/**
 * @file
 * Memory access-stream generators for the TLB/page-walk studies
 * (Figure 3). Each profile models a service's instruction and data
 * reference behaviour with Zipfian page popularity over configurable
 * footprints: page-walk cycles emerge from the simulated TLB
 * hierarchy, not from an analytic miss-rate formula.
 */

#ifndef CTG_WORKLOADS_ACCESS_GEN_HH
#define CTG_WORKLOADS_ACCESS_GEN_HH

#include <memory>

#include "base/rng.hh"
#include "base/types.hh"
#include "workloads/profile.hh"

namespace ctg
{

/** Reference-behaviour parameters of one service. */
struct AccessProfile
{
    /** Anonymous-heap data footprint. */
    std::uint64_t dataBytes = std::uint64_t{8} << 30;
    /** Code/instruction footprint. */
    std::uint64_t codeBytes = std::uint64_t{256} << 20;
    /** Skew of data-page popularity (higher = hotter head). */
    double dataZipfTheta = 0.65;
    /** Skew of code-page popularity. */
    double codeZipfTheta = 0.55;
    /** Store fraction of data references. */
    double writeFrac = 0.3;
    /** Non-memory work per operation, in cycles (CPI model). */
    Cycles computePerOp = 60;
};

/** Per-service reference profiles calibrated to Figure 3. */
AccessProfile makeAccessProfile(WorkloadKind kind);

/** "Ads" appears only in Figure 3; give it a profile too. */
AccessProfile makeAdsAccessProfile();

/**
 * Generates virtual addresses over a data and a code region.
 */
class AccessStream
{
  public:
    AccessStream(const AccessProfile &profile, Addr data_base,
                 Addr code_base, std::uint64_t seed);

    /** Next data reference (address + load/store). */
    Addr nextData(bool *is_write);

    /** Next instruction-fetch address. */
    Addr nextCode();

  private:
    AccessProfile profile_;
    Addr dataBase_;
    Addr codeBase_;
    Rng rng_;
    std::unique_ptr<Zipf> dataZipf_;
    std::unique_ptr<Zipf> codeZipf_;
};

} // namespace ctg

#endif // CTG_WORKLOADS_ACCESS_GEN_HH
