#include "workloads/fragmenter.hh"

#include "base/serde.hh"

namespace ctg
{

Fragmenter::Fragmenter(Kernel &kernel, Config config,
                       std::uint64_t seed)
    : kernel_(kernel), config_(config), rng_(seed)
{}

Fragmenter::Fragmenter(Kernel &kernel, Config config,
                       serde::Reader &in)
    : kernel_(kernel), config_(config)
{
    rng_.setRawState(in.getRngState());
    sprinkles_ = in.getPodVector<Pfn>();
    const std::uint64_t frames = kernel_.mem().numFrames();
    for (const Pfn head : sprinkles_) {
        if (head >= frames)
            throw serde::Error("fragmenter: sprinkle out of range");
    }
}

void
Fragmenter::saveTo(serde::Writer &out) const
{
    out.putRngState(rng_.rawState());
    out.putPodVector(sprinkles_);
}

Fragmenter::~Fragmenter()
{
    for (const Pfn head : sprinkles_)
        kernel_.freePages(head);
}

void
Fragmenter::run()
{
    // Phase 1: fill memory with single user pages so the free lists
    // hold only scattered fragments.
    AddressSpace space(kernel_, 0xf7a6);
    const auto target = static_cast<std::uint64_t>(
        config_.fillFrac *
        static_cast<double>(kernel_.mem().numFrames()));
    std::vector<Addr> regions;
    std::uint64_t backed = 0;
    // Sub-huge regions force 4 KB backing even with THP on.
    const std::uint64_t region_bytes = 64 * pageBytes;
    while (backed + region_bytes / pageBytes <= target) {
        const Addr base = space.mmap(region_bytes);
        const std::uint64_t got =
            space.touchRange(base, region_bytes);
        regions.push_back(base);
        backed += got;
        if (got == 0)
            break;
    }

    // Phase 2: with memory nearly full, the free lists hold only
    // scattered fragments. Interleave unmovable sprinkles with small
    // user releases so every sprinkle lands in a different fragment
    // — exactly the worst case production converges to.
    const auto sprinkle_target = static_cast<std::uint64_t>(
        config_.unmovableFrac *
        static_cast<double>(kernel_.mem().numFrames()));
    // Shuffle region order.
    for (std::size_t i = regions.size(); i > 1; --i) {
        const std::size_t j = rng_.below(i);
        std::swap(regions[i - 1], regions[j]);
    }
    std::size_t next_region = 0;
    while (sprinkles_.size() < sprinkle_target) {
        AllocRequest req;
        req.order = 0;
        req.mt = MigrateType::Unmovable;
        req.source = rng_.chance(0.7) ? AllocSource::Networking
                                      : AllocSource::Slab;
        req.lifetime = Lifetime::Long;
        const Pfn pfn = kernel_.allocPages(req);
        if (pfn != invalidPfn)
            sprinkles_.push_back(pfn);
        // Release one small region per `interleave` sprinkles to
        // keep a trickle of scattered free slots available.
        if ((pfn == invalidPfn ||
             sprinkles_.size() % config_.interleave == 0) &&
            next_region < regions.size()) {
            space.munmap(regions[next_region++]);
        }
        if (pfn == invalidPfn && next_region >= regions.size())
            break;
    }

    // Phase 3: the fragmentation process exits — all its user memory
    // goes back, leaving the sprinkles strewn across the machine.
    for (std::size_t i = next_region; i < regions.size(); ++i)
        space.munmap(regions[i]);
}

} // namespace ctg
