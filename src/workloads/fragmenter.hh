/**
 * @file
 * Fragmentation pretreatment (Section 5.1's "Full Fragmentation"
 * setup): fill memory with 4 KB user pages, sprinkle long-lived
 * unmovable kernel allocations into the gaps (they land scattered
 * through migratetype fallback), then release the user pages. What
 * remains is the production pathology: nearly every 2 MB block
 * contaminated by an unmovable page, so a vanilla kernel cannot form
 * huge pages no matter how much memory is free.
 */

#ifndef CTG_WORKLOADS_FRAGMENTER_HH
#define CTG_WORKLOADS_FRAGMENTER_HH

#include <memory>
#include <vector>

#include "base/rng.hh"
#include "kernel/addrspace.hh"

namespace ctg
{

/**
 * Applies and holds a fragmentation pretreatment. The sprinkled
 * unmovable allocations stay alive while this object lives.
 */
class Fragmenter
{
  public:
    struct Config
    {
        /** Fraction of memory filled with user pages first. */
        double fillFrac = 0.99;
        /** Unmovable pages sprinkled, as a fraction of all pages. */
        double unmovableFrac = 0.02;
        /** Interleave granularity: user pages released between
         * consecutive sprinkles. */
        unsigned interleave = 2;
    };

    Fragmenter(Kernel &kernel, Config config, std::uint64_t seed);

    /** Checkpoint restore: adopt the serialized sprinkle list (the
     * pretreatment already ran before the snapshot; run() must not
     * be called again). */
    Fragmenter(Kernel &kernel, Config config, serde::Reader &in);

    ~Fragmenter();

    Fragmenter(const Fragmenter &) = delete;
    Fragmenter &operator=(const Fragmenter &) = delete;

    /** Run the pretreatment. */
    void run();

    std::uint64_t sprinkledPages() const { return sprinkles_.size(); }

    /** Serialize the held sprinkles and RNG (checkpoint). */
    void saveTo(serde::Writer &out) const;

  private:
    Kernel &kernel_;
    Config config_;
    Rng rng_;
    std::vector<Pfn> sprinkles_;
};

} // namespace ctg

#endif // CTG_WORKLOADS_FRAGMENTER_HH
