#include "workloads/profile.hh"

namespace ctg
{

const char *
workloadName(WorkloadKind kind)
{
    switch (kind) {
      case WorkloadKind::Web:
        return "Web";
      case WorkloadKind::CacheA:
        return "Cache A";
      case WorkloadKind::CacheB:
        return "Cache B";
      case WorkloadKind::CI:
        return "CI";
      case WorkloadKind::Nginx:
        return "NGINX";
      case WorkloadKind::Memcached:
        return "memcached";
      case WorkloadKind::Aging:
        return "Aging";
      case WorkloadKind::FsCacheHeavy:
        return "FS-cache";
      case WorkloadKind::UnmovableBursty:
        return "Unmovable-bursty";
    }
    return "?";
}

const char *
workloadKey(WorkloadKind kind)
{
    switch (kind) {
      case WorkloadKind::Web:
        return "web";
      case WorkloadKind::CacheA:
        return "cache-a";
      case WorkloadKind::CacheB:
        return "cache-b";
      case WorkloadKind::CI:
        return "ci";
      case WorkloadKind::Nginx:
        return "nginx";
      case WorkloadKind::Memcached:
        return "memcached";
      case WorkloadKind::Aging:
        return "aging";
      case WorkloadKind::FsCacheHeavy:
        return "fs-cache";
      case WorkloadKind::UnmovableBursty:
        return "unmovable-bursty";
    }
    return "?";
}

bool
parseWorkloadKind(const std::string &key, WorkloadKind *out)
{
    for (unsigned k = 0; k < numWorkloadKinds; ++k) {
        const auto kind = static_cast<WorkloadKind>(k);
        if (key == workloadKey(kind)) {
            *out = kind;
            return true;
        }
    }
    return false;
}

WorkloadProfile
makeProfile(WorkloadKind kind, std::uint64_t mem_bytes)
{
    // Scale kernel churn linearly with memory so the steady-state
    // unmovable fraction of memory is machine-size invariant. The
    // base rates are calibrated on an 8 GiB reference server to the
    // paper's Section 2 measurements: ~7-8% of 4 KB pages unmovable
    // with the Figure 6 source mix (networking ~73%, slab ~12%,
    // filesystem ~6%, page tables ~5%, others ~4%).
    const double s = static_cast<double>(mem_bytes) /
                     static_cast<double>(std::uint64_t{8} << 30);

    WorkloadProfile p;
    p.kind = kind;
    p.name = workloadName(kind);

    // Networking defaults (Little's law: live pages ~= rate *
    // [0.75*0.01 + 0.25*10] * 1.62 pages/skb).
    p.net.queues = 16;
    p.net.ringBlocksPerQueue = 16;
    p.net.skbRatePerSec = 15500.0 * s;
    p.net.skbMeanLifeSec = 0.01;
    p.net.longLivedFrac = 0.25;
    p.net.longMeanLifeSec = 10.0;

    // Filesystem scratch + cache.
    p.fs.scratchRatePerSec = 2000.0 * s;
    p.fs.scratchMeanLifeSec = 0.02;
    p.fs.longLivedFrac = 0.25;
    p.fs.longMeanLifeSec = 8.0;
    // Absolute rate: the cache absorbs a machine's free memory within
    // a few simulated seconds, as production page caches do.
    p.fs.cacheGrowthPagesPerSec =
        0.10 * static_cast<double>(mem_bytes / pageBytes);
    // The cache is willing to take whatever is free; the shrinker
    // hands it back under pressure.
    p.fs.cacheCapPages = mem_bytes / pageBytes / 2;
    p.fs.keepFreePages = static_cast<std::uint64_t>(
        0.035 * static_cast<double>(mem_bytes / pageBytes));

    // Slab object churn (fine-grained; the bulk footprint is added
    // by the Workload's slab page pool).
    p.slab.ratePerSec = 1800.0 * s;
    p.slab.meanLifeSec = 0.02;
    p.slab.longLivedFrac = 0.2;
    p.slab.longMeanLifeSec = 10.0;

    p.miscRatePerSec = 1500.0 * s;

    // Fill the resident-kernel cap over the first ~25 simulated
    // seconds (the paper's "unmovable memory increases drastically
    // within the first hour and then plateaus").
    p.residentKernelPagesPerSec =
        0.032 * static_cast<double>(mem_bytes / pageBytes) / 35.0;

    switch (kind) {
      case WorkloadKind::Web:
        p.residentFrac = 0.80;
        p.processes = 8;
        p.heapChurnFracPerSec = 0.02;
        p.net.skbRatePerSec *= 0.8;
        p.fs.scratchRatePerSec *= 1.5;
        break;
      case WorkloadKind::CacheA:
        p.residentFrac = 0.84;
        p.processes = 2;
        p.heapChurnFracPerSec = 0.008;
        p.net.skbRatePerSec *= 1.1;
        p.pinRatePerSec = 40.0 * s;
        p.pinMeanLifeSec = 15.0;
        break;
      case WorkloadKind::CacheB:
        p.residentFrac = 0.82;
        p.processes = 2;
        p.heapChurnFracPerSec = 0.01;
        p.net.skbRatePerSec *= 1.2;
        p.pinRatePerSec = 80.0 * s;
        p.pinMeanLifeSec = 20.0;
        break;
      case WorkloadKind::CI:
        p.residentFrac = 0.62;
        p.processes = 6;
        p.heapChurnFracPerSec = 0.05;
        p.jobTurnoverPerSec = 0.08;
        p.net.skbRatePerSec *= 0.4;
        p.fs.scratchRatePerSec *= 1.3;
        p.slab.ratePerSec *= 1.5;
        break;
      case WorkloadKind::Nginx:
        p.residentFrac = 0.30;
        p.processes = 4;
        p.heapChurnFracPerSec = 0.01;
        p.net.skbRatePerSec *= 1.6;
        break;
      case WorkloadKind::Memcached:
        p.residentFrac = 0.78;
        p.processes = 1;
        p.heapChurnFracPerSec = 0.006;
        p.net.skbRatePerSec *= 1.3;
        p.pinRatePerSec = 40.0 * s;
        break;

      // The three aging profiles below are calibrated to Mansi &
      // Swift, "Characterizing Physical Memory Fragmentation":
      // fragmentation is driven less by instantaneous load than by
      // the *accretion* of unmovable objects over days, by page
      // caches that absorb all free memory, and by bursts of kernel
      // allocations landing in whatever holes exist at that moment.

      case WorkloadKind::Aging:
        // Multi-day slow aging compressed in time: low churn, steady
        // job turnover, and a resident-kernel population that keeps
        // accreting long after the paper profiles plateau (their
        // "fragmentation grows monotonically with uptime" finding).
        p.residentFrac = 0.72;
        p.processes = 6;
        p.heapChurnFracPerSec = 0.004;
        p.jobTurnoverPerSec = 0.01;
        p.net.skbRatePerSec *= 0.6;
        p.slab.longLivedFrac = 0.45;
        p.slab.longMeanLifeSec = 60.0;
        p.residentKernelFrac = 0.055;
        p.residentKernelPagesPerSec =
            0.055 * static_cast<double>(mem_bytes / pageBytes) / 70.0;
        break;
      case WorkloadKind::FsCacheHeavy:
        // File server: small anonymous footprint, the page cache
        // owns the machine, and metadata slabs (dentries/inodes)
        // churn hard — the configuration Mansi & Swift found ages
        // movable memory fastest because cache pages fill every hole.
        p.residentFrac = 0.25;
        p.processes = 4;
        p.heapChurnFracPerSec = 0.008;
        p.fs.scratchRatePerSec *= 3.0;
        p.fs.cacheGrowthPagesPerSec =
            0.25 * static_cast<double>(mem_bytes / pageBytes);
        p.fs.cacheCapPages = static_cast<std::uint64_t>(
            0.70 * static_cast<double>(mem_bytes / pageBytes));
        p.slab.ratePerSec *= 2.0;
        p.slab.longLivedFrac = 0.35;
        break;
      case WorkloadKind::UnmovableBursty:
        // Bursts of kernel-object allocation (connection storms,
        // container churn) plus a pin-heavy IO path: unmovable pages
        // arrive in waves and strand wherever free memory happened
        // to be, the scatter pattern behind Mansi & Swift's
        // worst-case unmovable interleaving.
        p.residentFrac = 0.65;
        p.processes = 4;
        p.heapChurnFracPerSec = 0.015;
        p.net.skbRatePerSec *= 2.2;
        p.net.longLivedFrac = 0.5;
        p.net.longMeanLifeSec = 25.0;
        p.slab.ratePerSec *= 2.5;
        p.slab.longLivedFrac = 0.4;
        p.miscRatePerSec *= 3.0;
        p.miscLongFrac = 0.25;
        p.pinRatePerSec = 120.0 * s;
        p.pinMeanLifeSec = 8.0;
        break;
    }
    return p;
}

} // namespace ctg
