#include "workloads/profile.hh"

namespace ctg
{

const char *
workloadName(WorkloadKind kind)
{
    switch (kind) {
      case WorkloadKind::Web:
        return "Web";
      case WorkloadKind::CacheA:
        return "Cache A";
      case WorkloadKind::CacheB:
        return "Cache B";
      case WorkloadKind::CI:
        return "CI";
      case WorkloadKind::Nginx:
        return "NGINX";
      case WorkloadKind::Memcached:
        return "memcached";
    }
    return "?";
}

WorkloadProfile
makeProfile(WorkloadKind kind, std::uint64_t mem_bytes)
{
    // Scale kernel churn linearly with memory so the steady-state
    // unmovable fraction of memory is machine-size invariant. The
    // base rates are calibrated on an 8 GiB reference server to the
    // paper's Section 2 measurements: ~7-8% of 4 KB pages unmovable
    // with the Figure 6 source mix (networking ~73%, slab ~12%,
    // filesystem ~6%, page tables ~5%, others ~4%).
    const double s = static_cast<double>(mem_bytes) /
                     static_cast<double>(std::uint64_t{8} << 30);

    WorkloadProfile p;
    p.kind = kind;
    p.name = workloadName(kind);

    // Networking defaults (Little's law: live pages ~= rate *
    // [0.75*0.01 + 0.25*10] * 1.62 pages/skb).
    p.net.queues = 16;
    p.net.ringBlocksPerQueue = 16;
    p.net.skbRatePerSec = 15500.0 * s;
    p.net.skbMeanLifeSec = 0.01;
    p.net.longLivedFrac = 0.25;
    p.net.longMeanLifeSec = 10.0;

    // Filesystem scratch + cache.
    p.fs.scratchRatePerSec = 2000.0 * s;
    p.fs.scratchMeanLifeSec = 0.02;
    p.fs.longLivedFrac = 0.25;
    p.fs.longMeanLifeSec = 8.0;
    // Absolute rate: the cache absorbs a machine's free memory within
    // a few simulated seconds, as production page caches do.
    p.fs.cacheGrowthPagesPerSec =
        0.10 * static_cast<double>(mem_bytes / pageBytes);
    // The cache is willing to take whatever is free; the shrinker
    // hands it back under pressure.
    p.fs.cacheCapPages = mem_bytes / pageBytes / 2;
    p.fs.keepFreePages = static_cast<std::uint64_t>(
        0.035 * static_cast<double>(mem_bytes / pageBytes));

    // Slab object churn (fine-grained; the bulk footprint is added
    // by the Workload's slab page pool).
    p.slab.ratePerSec = 1800.0 * s;
    p.slab.meanLifeSec = 0.02;
    p.slab.longLivedFrac = 0.2;
    p.slab.longMeanLifeSec = 10.0;

    p.miscRatePerSec = 1500.0 * s;

    // Fill the resident-kernel cap over the first ~25 simulated
    // seconds (the paper's "unmovable memory increases drastically
    // within the first hour and then plateaus").
    p.residentKernelPagesPerSec =
        0.032 * static_cast<double>(mem_bytes / pageBytes) / 35.0;

    switch (kind) {
      case WorkloadKind::Web:
        p.residentFrac = 0.80;
        p.processes = 8;
        p.heapChurnFracPerSec = 0.02;
        p.net.skbRatePerSec *= 0.8;
        p.fs.scratchRatePerSec *= 1.5;
        break;
      case WorkloadKind::CacheA:
        p.residentFrac = 0.84;
        p.processes = 2;
        p.heapChurnFracPerSec = 0.008;
        p.net.skbRatePerSec *= 1.1;
        p.pinRatePerSec = 40.0 * s;
        p.pinMeanLifeSec = 15.0;
        break;
      case WorkloadKind::CacheB:
        p.residentFrac = 0.82;
        p.processes = 2;
        p.heapChurnFracPerSec = 0.01;
        p.net.skbRatePerSec *= 1.2;
        p.pinRatePerSec = 80.0 * s;
        p.pinMeanLifeSec = 20.0;
        break;
      case WorkloadKind::CI:
        p.residentFrac = 0.62;
        p.processes = 6;
        p.heapChurnFracPerSec = 0.05;
        p.jobTurnoverPerSec = 0.08;
        p.net.skbRatePerSec *= 0.4;
        p.fs.scratchRatePerSec *= 1.3;
        p.slab.ratePerSec *= 1.5;
        break;
      case WorkloadKind::Nginx:
        p.residentFrac = 0.30;
        p.processes = 4;
        p.heapChurnFracPerSec = 0.01;
        p.net.skbRatePerSec *= 1.6;
        break;
      case WorkloadKind::Memcached:
        p.residentFrac = 0.78;
        p.processes = 1;
        p.heapChurnFracPerSec = 0.006;
        p.net.skbRatePerSec *= 1.3;
        p.pinRatePerSec = 40.0 * s;
        break;
    }
    return p;
}

} // namespace ctg
