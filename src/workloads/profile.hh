/**
 * @file
 * Workload profiles calibrated to the paper's production services.
 *
 * Each profile parameterizes the synthetic driver (Workload) for one
 * of the services the evaluation uses: Web (large code + large
 * heap, request churn), Cache A / Cache B (in-memory caches, huge
 * resident sets, heavy networking), CI (build/test jobs: whole
 * address spaces created and destroyed), NGINX and memcached (the
 * open-source proxies used for the hardware evaluation). Rates scale
 * with machine memory so the same profile drives servers of
 * different simulated sizes.
 */

#ifndef CTG_WORKLOADS_PROFILE_HH
#define CTG_WORKLOADS_PROFILE_HH

#include <cstdint>
#include <string>

#include "kernel/fsbuffers.hh"
#include "kernel/netstack.hh"
#include "workloads/slab_churn.hh"

namespace ctg
{

/** Identifier of a calibrated profile. The first six are the paper's
 * production services; the last three are fragmentation-aging
 * profiles calibrated to Mansi & Swift, "Characterizing Physical
 * Memory Fragmentation" (see makeProfile). */
enum class WorkloadKind
{
    Web,
    CacheA,
    CacheB,
    CI,
    Nginx,
    Memcached,
    Aging,           //!< multi-day slow aging, compressed in time
    FsCacheHeavy,    //!< file-server: page cache owns the machine
    UnmovableBursty, //!< kernel-object bursts + pin storms
};

/** Number of WorkloadKind values (array sizing). */
constexpr unsigned numWorkloadKinds = 9;

/** All tunables of one synthetic service. */
struct WorkloadProfile
{
    std::string name;
    WorkloadKind kind = WorkloadKind::Web;

    /** Fraction of physical memory the application keeps resident. */
    double residentFrac = 0.70;
    /** Number of simulated processes sharing the footprint. */
    unsigned processes = 4;
    /** Fraction of the resident set released+refaulted per second
     * (request churn / code deploys). */
    double heapChurnFracPerSec = 0.01;
    /** CI-style job turnover: address spaces destroyed/recreated per
     * second (0 for long-running services). */
    double jobTurnoverPerSec = 0.0;

    NetStack::Config net;
    FsBuffers::Config fs;
    SlabChurn::Config slab;
    /** Miscellaneous unmovable kernel churn (drivers, per-cpu). */
    double miscRatePerSec = 300.0;
    double miscLongFrac = 0.05;

    /** Resident kernel growth: allocations that persist for the
     * whole run (dentry/inode caches, conntrack, socket structs).
     * They accrete one by one under whatever memory conditions hold
     * at that moment — which is why they end up scattered across
     * the address space. */
    double residentKernelFrac = 0.032; //!< cap, fraction of pages
    double residentKernelPagesPerSec = 0.0; //!< fill rate (scaled)

    /** khugepaged promotion budget (2 MB collapses per second,
     * split across processes). */
    double khugepagedChunksPerSec = 64.0;

    /** Zero-copy pinning of user pages (pages per second). */
    double pinRatePerSec = 0.0;
    double pinMeanLifeSec = 20.0;
};

/**
 * Calibrated profile for a service on a machine of the given size.
 * Kernel-churn rates scale linearly with memory so the unmovable
 * footprint fraction stays machine-size invariant.
 */
WorkloadProfile makeProfile(WorkloadKind kind,
                            std::uint64_t mem_bytes);

const char *workloadName(WorkloadKind kind);

/** Stable lowercase key for CLI/env selection ("web", "cache-a",
 * "aging", ...) — the CTG_WORKLOAD / --workloads vocabulary. */
const char *workloadKey(WorkloadKind kind);

/** Parse a workloadKey() string; returns false (leaving @p out
 * untouched) on anything unregistered. */
bool parseWorkloadKind(const std::string &key, WorkloadKind *out);

} // namespace ctg

#endif // CTG_WORKLOADS_PROFILE_HH
