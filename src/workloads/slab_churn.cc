#include "workloads/slab_churn.hh"

namespace ctg
{

SlabChurn::SlabChurn(SlabAllocator &slab, Config config,
                     std::uint64_t seed)
    : slab_(slab), config_(std::move(config)), rng_(seed)
{
    ctg_assert(config_.ratePerSec > 0);
    for (const auto &[size, weight] : config_.sizeDist) {
        ctg_assert(size <= SlabAllocator::maxObjectBytes);
        weightTotal_ += weight;
    }
    nextArrival_ = rng_.exponential(1.0 / config_.ratePerSec);
}

std::uint32_t
SlabChurn::sampleSize()
{
    double pick = rng_.uniform() * weightTotal_;
    for (const auto &[size, weight] : config_.sizeDist) {
        if (pick < weight)
            return size;
        pick -= weight;
    }
    return config_.sizeDist.back().first;
}

void
SlabChurn::advanceTo(double now_sec)
{
    while (true) {
        const double next_death =
            live_.empty() ? 1e300 : live_.top().death;
        const double next_event = std::min(next_death, nextArrival_);
        if (next_event > now_sec)
            break;
        if (next_death <= nextArrival_) {
            slab_.freeObject(live_.top().handle);
            live_.pop();
        } else {
            const auto handle = slab_.allocObject(sampleSize());
            if (handle != 0) {
                const bool long_lived =
                    rng_.chance(config_.longLivedFrac);
                const double life = rng_.exponential(
                    long_lived ? config_.longMeanLifeSec
                               : config_.meanLifeSec);
                live_.push(Obj{nextArrival_ + life, handle});
            }
            nextArrival_ +=
                rng_.exponential(1.0 / config_.ratePerSec);
        }
    }
}

} // namespace ctg
