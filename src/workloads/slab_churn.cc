#include "workloads/slab_churn.hh"

#include <algorithm>
#include <functional>

#include "base/serde.hh"

namespace ctg
{

SlabChurn::SlabChurn(SlabAllocator &slab, Config config,
                     std::uint64_t seed)
    : slab_(slab), config_(std::move(config)), rng_(seed)
{
    ctg_assert(config_.ratePerSec > 0);
    for (const auto &[size, weight] : config_.sizeDist) {
        ctg_assert(size <= SlabAllocator::maxObjectBytes);
        weightTotal_ += weight;
    }
    nextArrival_ = rng_.exponential(1.0 / config_.ratePerSec);
}

SlabChurn::SlabChurn(SlabAllocator &slab, Config config,
                     serde::Reader &in)
    : slab_(slab), config_(std::move(config)), rng_(0)
{
    ctg_assert(config_.ratePerSec > 0);
    for (const auto &[size, weight] : config_.sizeDist) {
        ctg_assert(size <= SlabAllocator::maxObjectBytes);
        weightTotal_ += weight;
    }

    rng_.setRawState(in.getRngState());
    nextArrival_ = in.getDouble();
    const std::uint64_t live_count = in.getU64();
    if (live_count > slab_.liveObjects())
        throw serde::Error("slab churn: live count exceeds slab");
    std::vector<Obj> &heap = serde::heapOf(live_);
    heap.reserve(live_count);
    for (std::uint64_t i = 0; i < live_count; ++i) {
        Obj obj;
        obj.death = in.getDouble();
        obj.handle = in.getU64();
        if (obj.handle == 0)
            throw serde::Error("slab churn: null object handle");
        heap.push_back(obj);
    }
    if (!std::is_heap(heap.begin(), heap.end(), std::greater<>()))
        throw serde::Error("slab churn: live heap order violated");
}

void
SlabChurn::saveTo(serde::Writer &out) const
{
    out.putRngState(rng_.rawState());
    out.putDouble(nextArrival_);
    const std::vector<Obj> &heap = serde::heapOf(live_);
    out.putU64(heap.size());
    for (const Obj &obj : heap) {
        out.putDouble(obj.death);
        out.putU64(obj.handle);
    }
}

std::uint32_t
SlabChurn::sampleSize()
{
    double pick = rng_.uniform() * weightTotal_;
    for (const auto &[size, weight] : config_.sizeDist) {
        if (pick < weight)
            return size;
        pick -= weight;
    }
    return config_.sizeDist.back().first;
}

void
SlabChurn::advanceTo(double now_sec)
{
    while (true) {
        const double next_death =
            live_.empty() ? 1e300 : live_.top().death;
        const double next_event = std::min(next_death, nextArrival_);
        if (next_event > now_sec)
            break;
        if (next_death <= nextArrival_) {
            slab_.freeObject(live_.top().handle);
            live_.pop();
        } else {
            const auto handle = slab_.allocObject(sampleSize());
            if (handle != 0) {
                const bool long_lived =
                    rng_.chance(config_.longLivedFrac);
                const double life = rng_.exponential(
                    long_lived ? config_.longMeanLifeSec
                               : config_.meanLifeSec);
                live_.push(Obj{nextArrival_ + life, handle});
            }
            nextArrival_ +=
                rng_.exponential(1.0 / config_.ratePerSec);
        }
    }
}

} // namespace ctg
