/**
 * @file
 * Kernel-object churn on a SlabAllocator: Poisson arrivals of
 * variously-sized objects with a heavy-tailed lifetime mix. The
 * long-lived tail (dentries, inodes, socket structs that stay) is
 * what keeps slab pages pinned across the address space.
 */

#ifndef CTG_WORKLOADS_SLAB_CHURN_HH
#define CTG_WORKLOADS_SLAB_CHURN_HH

#include <queue>
#include <vector>

#include "base/rng.hh"
#include "kernel/slab.hh"

namespace ctg
{

/**
 * Drives allocate/free traffic against a slab allocator.
 */
class SlabChurn
{
  public:
    struct Config
    {
        double ratePerSec = 20000.0;
        double meanLifeSec = 0.02;
        double longLivedFrac = 0.05;
        double longMeanLifeSec = 300.0;
        /** Object size distribution: (bytes, weight). */
        std::vector<std::pair<std::uint32_t, double>> sizeDist = {
            {64, 0.3}, {128, 0.25}, {256, 0.2}, {512, 0.1},
            {1024, 0.08}, {2048, 0.05}, {4096, 0.02},
        };
    };

    SlabChurn(SlabAllocator &slab, Config config, std::uint64_t seed);

    /** Checkpoint restore: adopt the serialized RNG, clock and live
     * heap (the slab allocator must have been restored first — the
     * handles refer into it). */
    SlabChurn(SlabAllocator &slab, Config config, serde::Reader &in);

    void advanceTo(double now_sec);

    std::uint64_t liveObjects() const { return live_.size(); }

    /** Serialize the full churn state (checkpoint). */
    void saveTo(serde::Writer &out) const;

  private:
    struct Obj
    {
        double death;
        SlabAllocator::ObjHandle handle;

        bool operator>(const Obj &o) const { return death > o.death; }
    };

    std::uint32_t sampleSize();

    SlabAllocator &slab_;
    Config config_;
    Rng rng_;
    double nextArrival_;
    std::priority_queue<Obj, std::vector<Obj>, std::greater<>> live_;
    double weightTotal_ = 0.0;
};

} // namespace ctg

#endif // CTG_WORKLOADS_SLAB_CHURN_HH
