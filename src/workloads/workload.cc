#include "workloads/workload.hh"

#include <algorithm>

#include "base/serde.hh"

namespace ctg
{

namespace
{

/** Bulk slab footprint: page-granularity churn standing in for the
 * thousands of kmalloc caches we do not model individually. */
ChurnPool::Config
slabBulkConfigFor(const WorkloadProfile &profile)
{
    ChurnPool::Config bulk;
    bulk.ratePerSec = std::max(1.0, profile.slab.ratePerSec * 2.8);
    bulk.meanLifeSec = 0.02;
    bulk.longLivedFrac = 0.25;
    bulk.longMeanLifeSec = 10.0;
    bulk.mt = MigrateType::Unmovable;
    bulk.source = AllocSource::Slab;
    bulk.lifetime = Lifetime::Long;
    return bulk;
}

ChurnPool::Config
miscConfigFor(const WorkloadProfile &profile)
{
    ChurnPool::Config misc;
    misc.ratePerSec = std::max(1.0, profile.miscRatePerSec);
    misc.meanLifeSec = 0.05;
    misc.longLivedFrac = 0.3;
    misc.longMeanLifeSec = 10.0;
    misc.mt = MigrateType::Unmovable;
    misc.source = AllocSource::Other;
    misc.lifetime = Lifetime::Long;
    return misc;
}

} // namespace

Workload::Workload(Kernel &kernel, WorkloadProfile profile,
                   std::uint64_t seed)
    : kernel_(kernel), profile_(std::move(profile)), rng_(seed)
{
    net_ = std::make_unique<NetStack>(kernel_, profile_.net,
                                      rng_.next());
    fs_ = std::make_unique<FsBuffers>(kernel_, profile_.fs,
                                      rng_.next());
    slab_ = std::make_unique<SlabAllocator>(kernel_);
    slabChurn_ = std::make_unique<SlabChurn>(*slab_, profile_.slab,
                                             rng_.next());
    slabBulk_ = std::make_unique<ChurnPool>(
        kernel_, slabBulkConfigFor(profile_), rng_.next());
    misc_ = std::make_unique<ChurnPool>(
        kernel_, miscConfigFor(profile_), rng_.next());
}

Workload::Workload(Kernel &kernel, WorkloadProfile profile,
                   serde::Reader &in)
    : kernel_(kernel), profile_(std::move(profile))
{
    net_ = std::make_unique<NetStack>(kernel_, profile_.net, in);
    fs_ = std::make_unique<FsBuffers>(kernel_, profile_.fs, in);
    slab_ = std::make_unique<SlabAllocator>(kernel_, in);
    slabChurn_ = std::make_unique<SlabChurn>(*slab_, profile_.slab,
                                             in);
    slabBulk_ = std::make_unique<ChurnPool>(
        kernel_, slabBulkConfigFor(profile_), in);
    misc_ = std::make_unique<ChurnPool>(
        kernel_, miscConfigFor(profile_), in);

    rng_.setRawState(in.getRngState());
    nowSec_ = in.getDouble();
    residentCarry_ = in.getDouble();
    nextPid_ = in.getU32();
    started_ = in.getBool();
    for (std::uint64_t *field :
         {&stats_.jobsRecycled, &stats_.pinsCreated,
          &stats_.pinFailures, &stats_.heapPagesChurned})
        *field = in.getU64();

    const std::uint64_t proc_count = in.getU64();
    if (proc_count != (started_ ? profile_.processes : 0))
        throw serde::Error("workload: process count mismatch");
    procs_.resize(proc_count);
    for (auto &proc : procs_) {
        if (in.getBool())
            proc.space =
                std::make_unique<AddressSpace>(kernel_, in);
        const std::uint64_t segment_count = in.getU64();
        proc.segments.reserve(segment_count);
        for (std::uint64_t i = 0; i < segment_count; ++i)
            proc.segments.push_back(in.getU64());
        proc.segmentBytes = in.getU64();
        proc.heapBytes = in.getU64();
        if (proc.space && proc.segmentBytes == 0)
            throw serde::Error("workload: bad segment size");
    }

    const std::uint64_t pin_count = in.getU64();
    std::vector<Pin> &heap = serde::heapOf(pins_);
    heap.reserve(pin_count);
    for (std::uint64_t i = 0; i < pin_count; ++i) {
        Pin pin;
        pin.death = in.getDouble();
        pin.id = in.getU64();
        if (pin.id == 0)
            throw serde::Error("workload: null pin handle");
        heap.push_back(pin);
    }
    if (!std::is_heap(heap.begin(), heap.end(), std::greater<>()))
        throw serde::Error("workload: pin heap order violated");

    const std::uint64_t refault_count = in.getU64();
    pendingRefault_.reserve(refault_count);
    for (std::uint64_t i = 0; i < refault_count; ++i) {
        const std::uint64_t pi = in.getU64();
        const std::uint64_t idx = in.getU64();
        if (pi >= procs_.size())
            throw serde::Error("workload: bad refault entry");
        pendingRefault_.emplace_back(
            static_cast<std::size_t>(pi),
            static_cast<std::size_t>(idx));
    }

    residentKernel_ = in.getPodVector<Pfn>();
    const std::uint64_t frames = kernel_.mem().numFrames();
    for (const Pfn head : residentKernel_) {
        if (head >= frames)
            throw serde::Error(
                "workload: resident pfn out of range");
    }
}

void
Workload::saveTo(serde::Writer &out) const
{
    net_->saveTo(out);
    fs_->saveTo(out);
    slab_->saveTo(out);
    slabChurn_->saveTo(out);
    slabBulk_->saveTo(out);
    misc_->saveTo(out);

    out.putRngState(rng_.rawState());
    out.putDouble(nowSec_);
    out.putDouble(residentCarry_);
    out.putU32(nextPid_);
    out.putBool(started_);
    for (const std::uint64_t field :
         {stats_.jobsRecycled, stats_.pinsCreated,
          stats_.pinFailures, stats_.heapPagesChurned})
        out.putU64(field);

    out.putU64(procs_.size());
    for (const auto &proc : procs_) {
        out.putBool(proc.space != nullptr);
        if (proc.space)
            proc.space->saveTo(out);
        out.putU64(proc.segments.size());
        for (const Addr base : proc.segments)
            out.putU64(base);
        out.putU64(proc.segmentBytes);
        out.putU64(proc.heapBytes);
    }

    const std::vector<Pin> &heap = serde::heapOf(pins_);
    out.putU64(heap.size());
    for (const Pin &pin : heap) {
        out.putDouble(pin.death);
        out.putU64(pin.id);
    }

    out.putU64(pendingRefault_.size());
    for (const auto &[pi, idx] : pendingRefault_) {
        out.putU64(pi);
        out.putU64(idx);
    }

    out.putPodVector(residentKernel_);
}

Workload::~Workload()
{
    // Drop pins before the address spaces disappear.
    while (!pins_.empty()) {
        kernel_.unpinById(pins_.top().id);
        pins_.pop();
    }
    for (const Pfn head : residentKernel_)
        kernel_.freePages(head);
}

void
Workload::spawnProcess(Proc &proc)
{
    proc.space =
        std::make_unique<AddressSpace>(kernel_, nextPid_++);
    const std::uint64_t resident_bytes = static_cast<std::uint64_t>(
        profile_.residentFrac *
        static_cast<double>(kernel_.mem().totalBytes()));
    proc.heapBytes = resident_bytes / profile_.processes;
    // Arena-style segments; each is huge-aligned so THP can back it.
    proc.segmentBytes =
        std::min<std::uint64_t>(std::uint64_t{32} << 20,
                                proc.heapBytes);
    proc.segmentBytes &= ~(hugeBytes - 1);
    if (proc.segmentBytes == 0)
        proc.segmentBytes = hugeBytes;
    const std::uint64_t count =
        std::max<std::uint64_t>(1,
                                proc.heapBytes / proc.segmentBytes);
    proc.segments.clear();
    for (std::uint64_t i = 0; i < count; ++i) {
        const Addr base = proc.space->mmap(proc.segmentBytes);
        proc.space->touchRange(base, proc.segmentBytes);
        proc.segments.push_back(base);
    }
}

void
Workload::start()
{
    ctg_assert(!started_);
    started_ = true;
    net_->start();
    procs_.resize(profile_.processes);
    for (auto &proc : procs_)
        spawnProcess(proc);
}

void
Workload::quiesce(bool keep_pins)
{
    net_->drainSkbs();
    fs_->drainScratch();
    slabBulk_->drain();
    misc_->drain();
    if (keep_pins)
        return;
    while (!pins_.empty()) {
        kernel_.unpinById(pins_.top().id);
        pins_.pop();
    }
}

void
Workload::restart()
{
    ctg_assert(started_);
    pendingRefault_.clear();
    // Rolling restart: one process at a time, with the kernel pools
    // (page cache above all) churning into the freed space between
    // teardown and refault — a restart never sees a pristine
    // machine.
    for (auto &proc : procs_) {
        proc.space.reset();
        nowSec_ += 0.5;
        kernel_.advanceSeconds(0.5);
        net_->advanceTo(nowSec_);
        fs_->advanceTo(nowSec_);
        slabChurn_->advanceTo(nowSec_);
        slabBulk_->advanceTo(nowSec_);
        misc_->advanceTo(nowSec_);
        spawnProcess(proc);
    }
}

void
Workload::churnHeapsRelease(double dt)
{
    for (std::size_t pi = 0; pi < procs_.size(); ++pi) {
        Proc &proc = procs_[pi];
        if (!proc.space)
            continue;
        const std::uint64_t heap_pages = proc.heapBytes / pageBytes;
        const std::uint64_t segment_pages =
            proc.segmentBytes / pageBytes;
        auto churn = static_cast<std::uint64_t>(
            profile_.heapChurnFracPerSec * dt *
            static_cast<double>(heap_pages));
        while (churn > 0 && !proc.segments.empty()) {
            const std::size_t idx = rng_.below(proc.segments.size());
            const Addr base = proc.segments[idx];
            const std::uint64_t batch = std::max<std::uint64_t>(
                1, std::min<std::uint64_t>(churn, segment_pages / 4));
            if (rng_.chance(0.55)) {
                // Arena recycle: unmap now; a fresh segment is
                // faulted in next step, after the kernel pools have
                // churned into the freed space.
                proc.space->munmap(base);
                proc.segments[idx] = proc.space->mmap(
                    proc.segmentBytes);
                stats_.heapPagesChurned += segment_pages;
            } else {
                // Hole punch now, refault next step.
                const std::uint64_t freed = proc.space->releaseRange(
                    base, proc.segmentBytes, batch, rng_);
                stats_.heapPagesChurned += freed;
            }
            pendingRefault_.emplace_back(pi, idx);
            churn -= std::min<std::uint64_t>(churn, batch);
        }
    }

    // CI-style job turnover: tear down and recreate processes.
    if (profile_.jobTurnoverPerSec > 0.0) {
        const double p = profile_.jobTurnoverPerSec * dt;
        for (auto &proc : procs_) {
            if (rng_.chance(p)) {
                proc.space.reset();
                spawnProcess(proc);
                ++stats_.jobsRecycled;
            }
        }
    }
}

void
Workload::churnHeapsRefault()
{
    for (const auto &[pi, idx] : pendingRefault_) {
        Proc &proc = procs_[pi];
        if (!proc.space || idx >= proc.segments.size())
            continue;
        proc.space->touchRange(proc.segments[idx],
                               proc.segmentBytes);
    }
    pendingRefault_.clear();
}

void
Workload::churnPins(double dt)
{
    while (!pins_.empty() && pins_.top().death <= nowSec_) {
        kernel_.unpinById(pins_.top().id);
        pins_.pop();
    }
    if (profile_.pinRatePerSec <= 0.0)
        return;
    const auto new_pins = static_cast<std::uint64_t>(
        profile_.pinRatePerSec * dt);
    for (std::uint64_t i = 0; i < new_pins; ++i) {
        Proc &proc = procs_[rng_.below(procs_.size())];
        if (!proc.space)
            continue;
        const Pfn frame = proc.space->randomBacked4kFrame(rng_);
        if (frame == invalidPfn ||
            kernel_.mem().frame(frame).isPinned()) {
            continue;
        }
        const std::uint64_t id = kernel_.pinPagesId(frame);
        if (id == 0) {
            ++stats_.pinFailures;
            continue;
        }
        ++stats_.pinsCreated;
        pins_.push(Pin{
            nowSec_ + rng_.exponential(profile_.pinMeanLifeSec),
            id});
    }
}

void
Workload::stepOnce(double dt)
{
    nowSec_ += dt;
    kernel_.advanceSeconds(dt);
    // Release first, then let the kernel pools churn into the freed
    // space, then refault: the unmovable allocations interleave with
    // the heap exactly as production request churn interleaves with
    // skb traffic — and every step ends in a quiescent, full-memory
    // state (free memory is whatever reclaim headroom remains).
    churnHeapsRelease(dt);
    net_->advanceTo(nowSec_);
    fs_->advanceTo(nowSec_);
    slabChurn_->advanceTo(nowSec_);
    slabBulk_->advanceTo(nowSec_);
    misc_->advanceTo(nowSec_);
    churnHeapsRefault();
    churnPins(dt);

    // khugepaged: background promotion of fully-populated 4 KB
    // ranges into huge mappings, paced like the kernel daemon.
    const auto promote_budget = static_cast<std::uint64_t>(
        profile_.khugepagedChunksPerSec * dt /
        static_cast<double>(procs_.size() ? procs_.size() : 1));
    for (auto &proc : procs_) {
        if (proc.space)
            proc.space->promoteHugeRanges(promote_budget);
    }

    // Resident kernel growth toward its cap, one page at a time so
    // every allocation sees a different allocator state.
    const auto cap = static_cast<std::uint64_t>(
        profile_.residentKernelFrac *
        static_cast<double>(kernel_.mem().numFrames()));
    residentCarry_ += profile_.residentKernelPagesPerSec * dt;
    while (residentCarry_ >= 1.0 && residentKernel_.size() < cap) {
        residentCarry_ -= 1.0;
        AllocRequest req;
        req.order = 0;
        req.mt = MigrateType::Unmovable;
        req.source = rng_.chance(0.78) ? AllocSource::Networking
                                       : AllocSource::Slab;
        req.lifetime = Lifetime::Long;
        const Pfn head = kernel_.allocPages(req);
        if (head == invalidPfn)
            break;
        residentKernel_.push_back(head);
    }
    if (residentKernel_.size() >= cap)
        residentCarry_ = 0.0;
}

void
Workload::runFor(double seconds, double step)
{
    ctg_assert(started_);
    ctg_assert(step > 0);
    double remaining = seconds;
    while (remaining > 1e-9) {
        const double dt = std::min(step, remaining);
        stepOnce(dt);
        remaining -= dt;
    }
}

std::uint64_t
Workload::residentPages() const
{
    std::uint64_t pages = 0;
    for (const auto &proc : procs_) {
        if (proc.space)
            pages += proc.space->backedPages();
    }
    return pages;
}

double
Workload::hugeBackedFraction() const
{
    std::uint64_t total = 0;
    std::uint64_t huge = 0;
    for (const auto &proc : procs_) {
        if (!proc.space)
            continue;
        total += proc.space->backedPages();
        huge += proc.space->chunks2m() * pagesPerHuge +
                proc.space->chunks1g() * pagesPerGiga;
    }
    return total == 0
               ? 0.0
               : static_cast<double>(huge) /
                     static_cast<double>(total);
}

unsigned
Workload::tryBackGigantic(unsigned count)
{
    unsigned got = 0;
    for (auto &proc : procs_) {
        if (!proc.space || got >= count)
            break;
        while (got < count) {
            // Rebacking, not growth: the service moves a gigabyte of
            // its dataset onto a gigantic page, so release that much
            // of the existing backing first (the HugeTLB remap path).
            const std::uint64_t released = proc.space->releasePages(
                pagesPerGiga + pagesPerGiga / 16, rng_);
            const Addr base = proc.space->mmap(gigaBytes);
            if (!proc.space->backWithGigantic(base)) {
                proc.space->munmap(base);
                // Refault what we released; the attempt failed.
                for (auto &p2 : procs_) {
                    if (p2.space) {
                        for (const Addr seg : p2.segments)
                            p2.space->touchRange(seg,
                                                 p2.segmentBytes);
                    }
                }
                (void)released;
                break;
            }
            ++got;
        }
    }
    return got;
}

} // namespace ctg
