/**
 * @file
 * Synthetic service driver: composes processes (address spaces with
 * demand faulting and heap churn) with the kernel subsystems
 * (networking, filesystem, slab, misc) at the rates of a
 * WorkloadProfile. Running one of these against a Kernel reproduces
 * the steady-state memory layouts the paper measures in production.
 */

#ifndef CTG_WORKLOADS_WORKLOAD_HH
#define CTG_WORKLOADS_WORKLOAD_HH

#include <memory>
#include <queue>
#include <vector>

#include "base/stat_registry.hh"
#include "kernel/addrspace.hh"
#include "kernel/churn.hh"
#include "kernel/fsbuffers.hh"
#include "kernel/netstack.hh"
#include "workloads/profile.hh"
#include "workloads/slab_churn.hh"

namespace ctg
{

/**
 * One running service on one simulated server.
 */
class Workload
{
  public:
    Workload(Kernel &kernel, WorkloadProfile profile,
             std::uint64_t seed);

    /** Checkpoint restore: rebuild every subsystem from the stream
     * in cold-construction order (owner-client ids and the shrinker
     * list must land exactly as at checkpoint). The kernel must
     * already be restored. */
    Workload(Kernel &kernel, WorkloadProfile profile,
             serde::Reader &in);

    ~Workload();

    Workload(const Workload &) = delete;
    Workload &operator=(const Workload &) = delete;

    /** Bring up the service: NIC rings, processes, initial faults. */
    void start();

    /** Code-deploy restart: tear down every process and fault the
     * footprint back in on whatever memory layout now exists (the
     * Partial Fragmentation setup of Section 5.1). */
    void restart();

    /** Advance the whole system by `seconds` in `step`-sized slices. */
    void runFor(double seconds, double step = 1.0);

    /** Traffic stops: drain every kernel churn pool and (unless
     * keep_pins) drop all pins. The unmovable demand collapses,
     * which is what lets the resize controller shrink the region
     * afterwards. */
    void quiesce(bool keep_pins = false);

    double now() const { return nowSec_; }

    /** Total pages backing the processes. */
    std::uint64_t residentPages() const;

    /** 2 MB-backed fraction of the resident set (for Figure 10). */
    double hugeBackedFraction() const;

    /** Attempt to back up to `count` gigantic pages across the
     * processes (Web's HugeTLB 1 GB path); returns pages obtained. */
    unsigned tryBackGigantic(unsigned count);

    const WorkloadProfile &profile() const { return profile_; }
    NetStack &net() { return *net_; }

    struct Stats
    {
        std::uint64_t jobsRecycled = 0;
        std::uint64_t pinsCreated = 0;
        std::uint64_t pinFailures = 0;
        std::uint64_t heapPagesChurned = 0;
    };

    const Stats &stats() const { return stats_; }

    /** Serialize the full workload state (checkpoint). */
    void saveTo(serde::Writer &out) const;

    /** Register workload counters under the given group
     * (conventionally `<server>.workload`). */
    void
    regStats(StatGroup group) const
    {
        group.gauge("jobs_recycled",
                    [this] { return double(stats_.jobsRecycled); });
        group.gauge("pins_created",
                    [this] { return double(stats_.pinsCreated); });
        group.gauge("pin_failures",
                    [this] { return double(stats_.pinFailures); });
        group.gauge(
            "heap_pages_churned",
            [this] { return double(stats_.heapPagesChurned); });
        group.gauge("resident_pages",
                    [this] { return double(residentPages()); });
        group.gauge("huge_backed_fraction",
                    [this] { return hugeBackedFraction(); });
    }

  private:
    struct Proc
    {
        std::unique_ptr<AddressSpace> space;
        /** Heap segments (arena-style); churn recycles or
         * hole-punches individual segments. */
        std::vector<Addr> segments;
        std::uint64_t segmentBytes = 0;
        std::uint64_t heapBytes = 0;
    };

    struct Pin
    {
        double death;
        std::uint64_t id;

        bool operator>(const Pin &o) const { return death > o.death; }
    };

    void spawnProcess(Proc &proc);
    void stepOnce(double dt);
    /** Phase 1 of heap churn: free memory (holes, unmaps). */
    void churnHeapsRelease(double dt);
    /** Phase 2: refault what phase 1 released — after the kernel
     * pools had a chance to allocate into the freed space, which is
     * how unmovable pages end up scattered through former heap
     * pageblocks. */
    void churnHeapsRefault();
    void churnPins(double dt);

    Kernel &kernel_;
    WorkloadProfile profile_;
    Rng rng_;
    std::vector<Proc> procs_;
    std::unique_ptr<NetStack> net_;
    std::unique_ptr<FsBuffers> fs_;
    std::unique_ptr<SlabAllocator> slab_;
    std::unique_ptr<SlabChurn> slabChurn_;
    std::unique_ptr<ChurnPool> slabBulk_;
    std::unique_ptr<ChurnPool> misc_;
    std::priority_queue<Pin, std::vector<Pin>, std::greater<>> pins_;
    /** Segments awaiting refault: (proc index, segment index). */
    std::vector<std::pair<std::size_t, std::size_t>> pendingRefault_;
    /** Run-lifetime kernel allocations (resident growth). */
    std::vector<Pfn> residentKernel_;
    double residentCarry_ = 0.0;
    double nowSec_ = 0.0;
    std::uint32_t nextPid_ = 1;
    bool started_ = false;
    Stats stats_;
};

} // namespace ctg

#endif // CTG_WORKLOADS_WORKLOAD_HH
