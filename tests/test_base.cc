/**
 * @file
 * Foundation tests: RNG determinism and distributions, Zipf sampler,
 * statistics (histogram, CDF, Pearson), unit formatting, the table
 * renderer, and event-queue ordering guarantees.
 */

#include <gtest/gtest.h>

#include <map>

#include "base/rng.hh"
#include "base/stats.hh"
#include "base/table.hh"
#include "base/units.hh"
#include "sim/eventq.hh"

namespace ctg
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowRespectsBound)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversRange)
{
    Rng rng(7);
    std::map<std::uint64_t, int> counts;
    for (int i = 0; i < 8000; ++i)
        ++counts[rng.below(8)];
    EXPECT_EQ(counts.size(), 8u);
    for (const auto &[v, c] : counts) {
        EXPECT_GT(c, 800) << v;
        EXPECT_LT(c, 1200) << v;
    }
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(3);
    RunningStat stat;
    for (int i = 0; i < 20000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        stat.add(u);
    }
    EXPECT_NEAR(stat.mean(), 0.5, 0.01);
}

TEST(Rng, ExponentialHasRequestedMean)
{
    Rng rng(11);
    RunningStat stat;
    for (int i = 0; i < 50000; ++i)
        stat.add(rng.exponential(3.0));
    EXPECT_NEAR(stat.mean(), 3.0, 0.1);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(5);
    RunningStat stat;
    for (int i = 0; i < 50000; ++i)
        stat.add(rng.gaussian(10.0, 2.0));
    EXPECT_NEAR(stat.mean(), 10.0, 0.1);
    EXPECT_NEAR(stat.stddev(), 2.0, 0.1);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng a(42);
    Rng b = a.fork();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(ZipfTest, HotterRanksMoreFrequent)
{
    Zipf zipf(1000, 0.8);
    Rng rng(9);
    std::uint64_t head = 0, tail = 0;
    for (int i = 0; i < 50000; ++i) {
        const std::uint64_t rank = zipf.sample(rng);
        ASSERT_LT(rank, 1000u);
        head += rank < 10;
        tail += rank >= 500;
    }
    EXPECT_GT(head, tail);
    EXPECT_GT(head, 5000u); // top-1% gets a large share
}

TEST(ZipfTest, ThetaControlsSkew)
{
    Rng rng(13);
    Zipf mild(1000, 0.3), hot(1000, 0.9);
    std::uint64_t mild_head = 0, hot_head = 0;
    for (int i = 0; i < 30000; ++i) {
        mild_head += mild.sample(rng) < 10;
        hot_head += hot.sample(rng) < 10;
    }
    EXPECT_GT(hot_head, mild_head * 2);
}

TEST(RunningStatTest, Moments)
{
    RunningStat stat;
    for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        stat.add(v);
    EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
    EXPECT_NEAR(stat.stddev(), 2.138, 0.01);
    EXPECT_DOUBLE_EQ(stat.min(), 2.0);
    EXPECT_DOUBLE_EQ(stat.max(), 9.0);
}

TEST(HistogramTest, BucketsAndPercentiles)
{
    Histogram hist(0.0, 100.0, 10);
    for (int i = 0; i < 100; ++i)
        hist.add(i + 0.5);
    EXPECT_EQ(hist.total(), 100u);
    EXPECT_EQ(hist.bucketCount(0), 10u);
    EXPECT_NEAR(hist.percentile(0.5), 50.0, 10.0);
    EXPECT_NEAR(hist.percentile(0.9), 90.0, 10.0);
}

TEST(HistogramTest, OutOfRangeCounted)
{
    Histogram hist(0.0, 10.0, 5);
    hist.add(-5.0);
    hist.add(100.0);
    EXPECT_EQ(hist.total(), 2u);
    EXPECT_EQ(hist.underflow(), 1u);
    EXPECT_EQ(hist.overflow(), 1u);
    for (std::size_t i = 0; i < hist.buckets(); ++i)
        EXPECT_EQ(hist.bucketCount(i), 0u);
}

TEST(HistogramTest, EmptyPercentileReturnsLo)
{
    Histogram hist(3.0, 10.0, 5);
    EXPECT_DOUBLE_EQ(hist.percentile(0.0), 3.0);
    EXPECT_DOUBLE_EQ(hist.percentile(0.5), 3.0);
    EXPECT_DOUBLE_EQ(hist.percentile(1.0), 3.0);
}

TEST(HistogramTest, OutOfRangeMassResolvesToBounds)
{
    Histogram hist(0.0, 10.0, 5);
    for (int i = 0; i < 8; ++i)
        hist.add(-1.0);
    hist.add(1000.0);
    hist.add(1000.0);
    // 80% of the mass sits below lo, the rest above hi.
    EXPECT_DOUBLE_EQ(hist.percentile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(hist.percentile(1.0), 10.0);
}

TEST(WarnRateLimiterTest, GrantsBudgetThenSuppresses)
{
    WarnRateLimiter limiter(3);
    EXPECT_TRUE(limiter.allow());
    EXPECT_TRUE(limiter.allow());
    EXPECT_TRUE(limiter.allow());
    EXPECT_EQ(limiter.suppressed(), 0u);

    EXPECT_FALSE(limiter.allow());
    EXPECT_TRUE(limiter.firstSuppressed());
    EXPECT_FALSE(limiter.allow());
    EXPECT_FALSE(limiter.firstSuppressed());
    EXPECT_EQ(limiter.suppressed(), 2u);
    EXPECT_EQ(limiter.calls(), 5u);
}

TEST(WarnRateLimiterTest, MacroCompilesAndCounts)
{
    // warn_limited keeps a per-call-site static limiter; loop to
    // prove repeated hits stop doing IO without crashing.
    for (int i = 0; i < 5; ++i)
        warn_limited(2, "rate-limited test warning %d", i);
    for (int i = 0; i < 3; ++i)
        warn_once("one-shot test warning"); // printed once
}

TEST(EmpiricalCdfTest, FractionAndQuantile)
{
    EmpiricalCdf cdf;
    for (int i = 1; i <= 100; ++i)
        cdf.add(i);
    EXPECT_DOUBLE_EQ(cdf.fractionAtOrBelow(50), 0.5);
    EXPECT_DOUBLE_EQ(cdf.fractionAtOrBelow(0), 0.0);
    EXPECT_DOUBLE_EQ(cdf.fractionAtOrBelow(1000), 1.0);
    EXPECT_NEAR(cdf.quantile(0.5), 50.0, 1.5);
}

TEST(PearsonTest, PerfectCorrelation)
{
    std::vector<double> xs = {1, 2, 3, 4, 5};
    std::vector<double> ys = {2, 4, 6, 8, 10};
    EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-9);
    std::vector<double> neg = {10, 8, 6, 4, 2};
    EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-9);
}

TEST(PearsonTest, IndependentNearZero)
{
    Rng rng(21);
    std::vector<double> xs, ys;
    for (int i = 0; i < 5000; ++i) {
        xs.push_back(rng.uniform());
        ys.push_back(rng.uniform());
    }
    EXPECT_NEAR(pearson(xs, ys), 0.0, 0.05);
}

TEST(UnitsTest, FormatBytes)
{
    EXPECT_EQ(formatBytes(512), "512 B");
    EXPECT_EQ(formatBytes(2048), "2.0 KiB");
    EXPECT_EQ(formatBytes(3 * 1024 * 1024), "3.0 MiB");
    EXPECT_EQ(formatBytes(std::uint64_t{5} << 30), "5.0 GiB");
}

TEST(UnitsTest, FormatPercent)
{
    EXPECT_EQ(formatPercent(0.314), "31.4%");
    EXPECT_EQ(formatPercent(0.5, 0), "50%");
}

TEST(TableTest, AlignsColumns)
{
    Table table("demo");
    table.header({"a", "long-header"});
    table.row({"xxxxx", "1"});
    const std::string out = table.render();
    EXPECT_NE(out.find("== demo =="), std::string::npos);
    EXPECT_NE(out.find("long-header"), std::string::npos);
    EXPECT_NE(out.find("xxxxx"), std::string::npos);
    // Column two starts at the same offset in both lines.
    const auto h = out.find("long-header");
    const auto v = out.find("1", out.find("xxxxx"));
    const auto h_line_start = out.rfind('\n', h) + 1;
    const auto v_line_start = out.rfind('\n', v) + 1;
    EXPECT_EQ(h - h_line_start, v - v_line_start);
}

TEST(EventQueueTest, FiresInTickOrder)
{
    EventQueue queue;
    std::vector<int> order;
    queue.schedule(30, [&order] { order.push_back(3); });
    queue.schedule(10, [&order] { order.push_back(1); });
    queue.schedule(20, [&order] { order.push_back(2); });
    queue.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(queue.now(), 30u);
}

TEST(EventQueueTest, SameTickFifo)
{
    EventQueue queue;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        queue.schedule(7, [&order, i] { order.push_back(i); });
    queue.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, PriorityBeatsInsertion)
{
    EventQueue queue;
    std::vector<int> order;
    queue.schedule(5, [&order] { order.push_back(2); },
                   EventPriority::Maintenance);
    queue.schedule(5, [&order] { order.push_back(1); },
                   EventPriority::HardwareResponse);
    queue.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueueTest, EventsCanScheduleEvents)
{
    EventQueue queue;
    int fired = 0;
    queue.schedule(1, [&] {
        ++fired;
        queue.schedule(1, [&] { ++fired; });
    });
    queue.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(queue.now(), 2u);
}

TEST(EventQueueTest, RunWithLimitStops)
{
    EventQueue queue;
    int fired = 0;
    queue.schedule(10, [&] { ++fired; });
    queue.schedule(100, [&] { ++fired; });
    queue.run(50);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(queue.pending(), 1u);
}

TEST(LoggingTest, PanicThrows)
{
    EXPECT_THROW(panic("boom %d", 1), PanicError);
    EXPECT_THROW(fatal("bad config"), FatalError);
    try {
        panic("value=%d", 42);
    } catch (const PanicError &e) {
        EXPECT_NE(std::string(e.what()).find("value=42"),
                  std::string::npos);
    }
}

} // namespace
} // namespace ctg
