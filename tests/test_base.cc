/**
 * @file
 * Foundation tests: RNG determinism and distributions, Zipf sampler,
 * statistics (histogram, CDF, Pearson), unit formatting, the table
 * renderer, and event-queue ordering guarantees.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>

#include "base/mergeable_stats.hh"
#include "base/rng.hh"
#include "base/span_trace.hh"
#include "base/stats.hh"
#include "base/table.hh"
#include "base/trace.hh"
#include "base/units.hh"
#include "sim/eventq.hh"

namespace ctg
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowRespectsBound)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversRange)
{
    Rng rng(7);
    std::map<std::uint64_t, int> counts;
    for (int i = 0; i < 8000; ++i)
        ++counts[rng.below(8)];
    EXPECT_EQ(counts.size(), 8u);
    for (const auto &[v, c] : counts) {
        EXPECT_GT(c, 800) << v;
        EXPECT_LT(c, 1200) << v;
    }
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(3);
    RunningStat stat;
    for (int i = 0; i < 20000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        stat.add(u);
    }
    EXPECT_NEAR(stat.mean(), 0.5, 0.01);
}

TEST(Rng, ExponentialHasRequestedMean)
{
    Rng rng(11);
    RunningStat stat;
    for (int i = 0; i < 50000; ++i)
        stat.add(rng.exponential(3.0));
    EXPECT_NEAR(stat.mean(), 3.0, 0.1);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(5);
    RunningStat stat;
    for (int i = 0; i < 50000; ++i)
        stat.add(rng.gaussian(10.0, 2.0));
    EXPECT_NEAR(stat.mean(), 10.0, 0.1);
    EXPECT_NEAR(stat.stddev(), 2.0, 0.1);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng a(42);
    Rng b = a.fork();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(ZipfTest, HotterRanksMoreFrequent)
{
    Zipf zipf(1000, 0.8);
    Rng rng(9);
    std::uint64_t head = 0, tail = 0;
    for (int i = 0; i < 50000; ++i) {
        const std::uint64_t rank = zipf.sample(rng);
        ASSERT_LT(rank, 1000u);
        head += rank < 10;
        tail += rank >= 500;
    }
    EXPECT_GT(head, tail);
    EXPECT_GT(head, 5000u); // top-1% gets a large share
}

TEST(ZipfTest, ThetaControlsSkew)
{
    Rng rng(13);
    Zipf mild(1000, 0.3), hot(1000, 0.9);
    std::uint64_t mild_head = 0, hot_head = 0;
    for (int i = 0; i < 30000; ++i) {
        mild_head += mild.sample(rng) < 10;
        hot_head += hot.sample(rng) < 10;
    }
    EXPECT_GT(hot_head, mild_head * 2);
}

TEST(RunningStatTest, Moments)
{
    RunningStat stat;
    for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        stat.add(v);
    EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
    EXPECT_NEAR(stat.stddev(), 2.138, 0.01);
    EXPECT_DOUBLE_EQ(stat.min(), 2.0);
    EXPECT_DOUBLE_EQ(stat.max(), 9.0);
}

TEST(HistogramTest, BucketsAndPercentiles)
{
    Histogram hist(0.0, 100.0, 10);
    for (int i = 0; i < 100; ++i)
        hist.add(i + 0.5);
    EXPECT_EQ(hist.total(), 100u);
    EXPECT_EQ(hist.bucketCount(0), 10u);
    EXPECT_NEAR(hist.percentile(0.5), 50.0, 10.0);
    EXPECT_NEAR(hist.percentile(0.9), 90.0, 10.0);
}

TEST(HistogramTest, OutOfRangeCounted)
{
    Histogram hist(0.0, 10.0, 5);
    hist.add(-5.0);
    hist.add(100.0);
    EXPECT_EQ(hist.total(), 2u);
    EXPECT_EQ(hist.underflow(), 1u);
    EXPECT_EQ(hist.overflow(), 1u);
    for (std::size_t i = 0; i < hist.buckets(); ++i)
        EXPECT_EQ(hist.bucketCount(i), 0u);
}

TEST(HistogramTest, EmptyPercentileReturnsLo)
{
    Histogram hist(3.0, 10.0, 5);
    EXPECT_DOUBLE_EQ(hist.percentile(0.0), 3.0);
    EXPECT_DOUBLE_EQ(hist.percentile(0.5), 3.0);
    EXPECT_DOUBLE_EQ(hist.percentile(1.0), 3.0);
}

TEST(HistogramTest, OutOfRangeMassResolvesToBounds)
{
    Histogram hist(0.0, 10.0, 5);
    for (int i = 0; i < 8; ++i)
        hist.add(-1.0);
    hist.add(1000.0);
    hist.add(1000.0);
    // 80% of the mass sits below lo, the rest above hi.
    EXPECT_DOUBLE_EQ(hist.percentile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(hist.percentile(1.0), 10.0);
}

TEST(WarnRateLimiterTest, GrantsBudgetThenSuppresses)
{
    WarnRateLimiter limiter(3);
    EXPECT_TRUE(limiter.allow());
    EXPECT_TRUE(limiter.allow());
    EXPECT_TRUE(limiter.allow());
    EXPECT_EQ(limiter.suppressed(), 0u);

    EXPECT_FALSE(limiter.allow());
    EXPECT_TRUE(limiter.firstSuppressed());
    EXPECT_FALSE(limiter.allow());
    EXPECT_FALSE(limiter.firstSuppressed());
    EXPECT_EQ(limiter.suppressed(), 2u);
    EXPECT_EQ(limiter.calls(), 5u);
}

TEST(WarnRateLimiterTest, MacroCompilesAndCounts)
{
    // warn_limited keeps a per-call-site static limiter; loop to
    // prove repeated hits stop doing IO without crashing.
    for (int i = 0; i < 5; ++i)
        warn_limited(2, "rate-limited test warning %d", i);
    for (int i = 0; i < 3; ++i)
        warn_once("one-shot test warning"); // printed once
}

TEST(EmpiricalCdfTest, FractionAndQuantile)
{
    EmpiricalCdf cdf;
    for (int i = 1; i <= 100; ++i)
        cdf.add(i);
    EXPECT_DOUBLE_EQ(cdf.fractionAtOrBelow(50), 0.5);
    EXPECT_DOUBLE_EQ(cdf.fractionAtOrBelow(0), 0.0);
    EXPECT_DOUBLE_EQ(cdf.fractionAtOrBelow(1000), 1.0);
    EXPECT_NEAR(cdf.quantile(0.5), 50.0, 1.5);
}

TEST(PearsonTest, PerfectCorrelation)
{
    std::vector<double> xs = {1, 2, 3, 4, 5};
    std::vector<double> ys = {2, 4, 6, 8, 10};
    EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-9);
    std::vector<double> neg = {10, 8, 6, 4, 2};
    EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-9);
}

TEST(PearsonTest, IndependentNearZero)
{
    Rng rng(21);
    std::vector<double> xs, ys;
    for (int i = 0; i < 5000; ++i) {
        xs.push_back(rng.uniform());
        ys.push_back(rng.uniform());
    }
    EXPECT_NEAR(pearson(xs, ys), 0.0, 0.05);
}

TEST(UnitsTest, FormatBytes)
{
    EXPECT_EQ(formatBytes(512), "512 B");
    EXPECT_EQ(formatBytes(2048), "2.0 KiB");
    EXPECT_EQ(formatBytes(3 * 1024 * 1024), "3.0 MiB");
    EXPECT_EQ(formatBytes(std::uint64_t{5} << 30), "5.0 GiB");
}

TEST(UnitsTest, FormatPercent)
{
    EXPECT_EQ(formatPercent(0.314), "31.4%");
    EXPECT_EQ(formatPercent(0.5, 0), "50%");
}

TEST(TableTest, AlignsColumns)
{
    Table table("demo");
    table.header({"a", "long-header"});
    table.row({"xxxxx", "1"});
    const std::string out = table.render();
    EXPECT_NE(out.find("== demo =="), std::string::npos);
    EXPECT_NE(out.find("long-header"), std::string::npos);
    EXPECT_NE(out.find("xxxxx"), std::string::npos);
    // Column two starts at the same offset in both lines.
    const auto h = out.find("long-header");
    const auto v = out.find("1", out.find("xxxxx"));
    const auto h_line_start = out.rfind('\n', h) + 1;
    const auto v_line_start = out.rfind('\n', v) + 1;
    EXPECT_EQ(h - h_line_start, v - v_line_start);
}

TEST(EventQueueTest, FiresInTickOrder)
{
    EventQueue queue;
    std::vector<int> order;
    queue.schedule(30, [&order] { order.push_back(3); });
    queue.schedule(10, [&order] { order.push_back(1); });
    queue.schedule(20, [&order] { order.push_back(2); });
    queue.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(queue.now(), 30u);
}

TEST(EventQueueTest, SameTickFifo)
{
    EventQueue queue;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        queue.schedule(7, [&order, i] { order.push_back(i); });
    queue.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, PriorityBeatsInsertion)
{
    EventQueue queue;
    std::vector<int> order;
    queue.schedule(5, [&order] { order.push_back(2); },
                   EventPriority::Maintenance);
    queue.schedule(5, [&order] { order.push_back(1); },
                   EventPriority::HardwareResponse);
    queue.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueueTest, EventsCanScheduleEvents)
{
    EventQueue queue;
    int fired = 0;
    queue.schedule(1, [&] {
        ++fired;
        queue.schedule(1, [&] { ++fired; });
    });
    queue.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(queue.now(), 2u);
}

TEST(EventQueueTest, RunWithLimitStops)
{
    EventQueue queue;
    int fired = 0;
    queue.schedule(10, [&] { ++fired; });
    queue.schedule(100, [&] { ++fired; });
    queue.run(50);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(queue.pending(), 1u);
}

TEST(LoggingTest, PanicThrows)
{
    EXPECT_THROW(panic("boom %d", 1), PanicError);
    EXPECT_THROW(fatal("bad config"), FatalError);
    try {
        panic("value=%d", 42);
    } catch (const PanicError &e) {
        EXPECT_NE(std::string(e.what()).find("value=42"),
                  std::string::npos);
    }
}

/** RAII guard: every trace-flag test leaves the mask empty. */
struct TraceMaskGuard
{
    ~TraceMaskGuard() { trace::disableAll(); }
};

TEST(TraceFlagsTest, SetFromStringEnablesListedFlags)
{
    const TraceMaskGuard guard;
    trace::disableAll();
    trace::setFromString("Buddy,Region");
    EXPECT_TRUE(trace::enabled(TraceFlag::Buddy));
    EXPECT_TRUE(trace::enabled(TraceFlag::Region));
    EXPECT_FALSE(trace::enabled(TraceFlag::Migrate));
}

TEST(TraceFlagsTest, SetFromStringAllEnablesEveryFlag)
{
    const TraceMaskGuard guard;
    trace::disableAll();
    trace::setFromString("All");
    EXPECT_EQ(trace::mask_.load(), trace::allFlagsMask());
}

TEST(TraceFlagsTest, SetFromStringEmptyAndSeparatorsAreNoops)
{
    const TraceMaskGuard guard;
    trace::disableAll();
    trace::setFromString("");
    EXPECT_EQ(trace::mask_.load(), 0u);
    trace::setFromString(",,  , ");
    EXPECT_EQ(trace::mask_.load(), 0u);
}

TEST(TraceFlagsTest, SetFromStringIgnoresUnknownFlags)
{
    const TraceMaskGuard guard;
    trace::disableAll();
    trace::setFromString("Bogus,Buddy,AlsoNotAFlag");
    EXPECT_EQ(trace::mask_.load(),
              static_cast<std::uint32_t>(TraceFlag::Buddy));
}

TEST(TraceFlagsTest, SetFromStringIsCaseSensitive)
{
    const TraceMaskGuard guard;
    trace::disableAll();
    // Flag names are exact: lowercase or shouty variants are unknown
    // flags, warned about and ignored, not silently matched.
    trace::setFromString("buddy,REGION,migrate");
    EXPECT_EQ(trace::mask_.load(), 0u);
}

TEST(TraceFlagsTest, SetFromStringTrailingCommaAndSpaces)
{
    const TraceMaskGuard guard;
    trace::disableAll();
    trace::setFromString("Buddy, Region,");
    EXPECT_TRUE(trace::enabled(TraceFlag::Buddy));
    EXPECT_TRUE(trace::enabled(TraceFlag::Region));
}

TEST(TraceFlagsTest, FlagFromNameRoundTripsEveryName)
{
    const TraceFlag all[] = {
        TraceFlag::Buddy,     TraceFlag::Compaction,
        TraceFlag::Migrate,   TraceFlag::Shootdown,
        TraceFlag::ChwEngine, TraceFlag::Region,
        TraceFlag::Fleet,     TraceFlag::Kernel,
        TraceFlag::Tlb,       TraceFlag::Faults,
    };
    for (const TraceFlag flag : all) {
        TraceFlag parsed;
        ASSERT_TRUE(trace::flagFromName(trace::flagName(flag),
                                        &parsed));
        EXPECT_EQ(parsed, flag);
    }
    TraceFlag unused;
    EXPECT_FALSE(trace::flagFromName("?", &unused));
    EXPECT_FALSE(trace::flagFromName("", &unused));
}

TEST(TraceSinkTest, FileSinkRedirectsDprintfOutput)
{
    const TraceMaskGuard guard;
    const std::string path =
        ::testing::TempDir() + "ctg_trace_sink_test.log";
    // openFileSink is the machinery CTG_TRACE_FILE drives at
    // startup; exercise it directly so the test owns the lifetime.
    ASSERT_TRUE(trace::openFileSink(path));
    trace::enable(TraceFlag::Buddy);
    CTG_DPRINTF(Buddy, "redirected %d", 42);
    trace::disable(TraceFlag::Buddy);
    CTG_DPRINTF(Buddy, "suppressed %d", 7);
    trace::setSink(nullptr); // closes the owned file, back to stderr

    std::ifstream in(path);
    std::stringstream contents;
    contents << in.rdbuf();
    EXPECT_NE(contents.str().find("Buddy: redirected 42"),
              std::string::npos);
    EXPECT_EQ(contents.str().find("suppressed"), std::string::npos);
    std::remove(path.c_str());
}

TEST(TraceSinkTest, OpenFileSinkFailureKeepsCurrentSink)
{
    EXPECT_FALSE(
        trace::openFileSink("/nonexistent-dir/trace.out"));
}

/** RAII guard: span tests leave no collected state or flags behind. */
struct SpanResetGuard
{
    ~SpanResetGuard() { spans::resetForTest(); }
};

TEST(SpanTraceTest, DisabledSpansAreInert)
{
    const SpanResetGuard guard;
    spans::resetForTest();
    {
        CTG_SPAN(Region, "never.recorded", {{"k", 1}});
        CTG_SPAN_EVENT(Region, "never.either");
    }
    EXPECT_EQ(spans::collectedCount(), 0u);
    EXPECT_EQ(spans::newFlowId(), 0u);
}

TEST(SpanTraceTest, NestedSpansRecordParentsAndEndArgs)
{
    const SpanResetGuard guard;
    spans::resetForTest();
    spans::enableAll();
    {
        CTG_SPAN_NAMED(outer, Region, "outer", {{"pages", 8}});
        {
            CTG_SPAN_NAMED(inner, Migrate, "inner");
            inner.arg("dst", 17);
            EXPECT_TRUE(inner.active());
        }
    }
    const auto events = spans::collectedEvents();
    ASSERT_EQ(events.size(), 4u);
    using Phase = spans::Event::Phase;
    EXPECT_EQ(events[0].phase, Phase::Begin);
    EXPECT_STREQ(events[0].name, "outer");
    EXPECT_EQ(events[0].parent, 0u);
    ASSERT_EQ(events[0].nargs, 1u);
    EXPECT_STREQ(events[0].args[0].key, "pages");
    EXPECT_EQ(events[0].args[0].value, 8);

    EXPECT_EQ(events[1].phase, Phase::Begin);
    EXPECT_STREQ(events[1].name, "inner");
    EXPECT_EQ(events[1].parent, events[0].id);

    EXPECT_EQ(events[2].phase, Phase::End);
    EXPECT_EQ(events[2].id, events[1].id);
    ASSERT_EQ(events[2].nargs, 1u);
    EXPECT_STREQ(events[2].args[0].key, "dst");
    EXPECT_EQ(events[2].args[0].value, 17);

    EXPECT_EQ(events[3].phase, Phase::End);
    EXPECT_EQ(events[3].id, events[0].id);

    // Logical timestamps are strictly increasing within the stream.
    for (std::size_t i = 1; i < events.size(); ++i)
        EXPECT_GT(events[i].ts, events[i - 1].ts);
}

TEST(SpanTraceTest, InstantAndFlowBindToEnclosingSpan)
{
    const SpanResetGuard guard;
    spans::resetForTest();
    spans::enableAll();
    std::uint64_t flow = 0;
    {
        CTG_SPAN(Shootdown, "origin");
        flow = spans::newFlowId();
        EXPECT_NE(flow, 0u);
        spans::flowBegin(TraceFlag::Shootdown, "arrow", flow);
        CTG_SPAN_EVENT(Faults, "fault.fired", {{"round", 2}});
    }
    {
        CTG_SPAN(Shootdown, "completion");
        spans::flowEnd(TraceFlag::Shootdown, "arrow", flow);
    }
    // B origin, s arrow, i fault, E origin, B completion, f arrow,
    // E completion.
    const auto events = spans::collectedEvents();
    ASSERT_EQ(events.size(), 7u);
    using Phase = spans::Event::Phase;
    const auto &origin = events[0];
    EXPECT_EQ(events[1].phase, Phase::FlowBegin);
    EXPECT_EQ(events[1].id, flow);
    EXPECT_EQ(events[1].parent, origin.id);
    EXPECT_EQ(events[2].phase, Phase::Instant);
    EXPECT_EQ(events[2].parent, origin.id);
    const auto &completion = events[4];
    EXPECT_EQ(completion.phase, Phase::Begin);
    EXPECT_EQ(events[5].phase, Phase::FlowEnd);
    EXPECT_EQ(events[5].id, flow);
    EXPECT_EQ(events[5].parent, completion.id);
    EXPECT_EQ(events[6].phase, Phase::End);
    EXPECT_EQ(events[6].id, completion.id);
}

TEST(SpanTraceTest, CaptureBuffersAndPublishesWholeStream)
{
    const SpanResetGuard guard;
    spans::resetForTest();
    spans::enableAll();
    const std::uint32_t stream = spans::reserveStreams(1);
    std::vector<spans::Event> captured;
    {
        spans::Capture capture(stream);
        {
            CTG_SPAN(Region, "in.capture");
        }
        EXPECT_EQ(spans::collectedCount(), 0u)
            << "captured events must not reach the collector early";
        captured = capture.take();
    }
    ASSERT_EQ(captured.size(), 2u);
    EXPECT_EQ(captured[0].stream, stream);
    // Ids encode (stream, sequence): schedule-independent.
    EXPECT_EQ(captured[0].id >> 32, stream);
    spans::publish(captured);
    EXPECT_EQ(spans::collectedCount(), 2u);
}

TEST(SpanTraceTest, FullCaptureDropsWholePairs)
{
    const SpanResetGuard guard;
    spans::resetForTest();
    spans::enableAll();
    const std::uint32_t stream = spans::reserveStreams(1);
    spans::Capture capture(stream, 2);
    {
        CTG_SPAN(Region, "a");
        {
            CTG_SPAN(Region, "b");
            {
                // Begin does not fit: the whole span must vanish,
                // not leave an orphan End.
                CTG_SPAN_NAMED(c, Region, "c");
                EXPECT_FALSE(c.active());
            }
        }
    }
    const auto events = capture.take();
    EXPECT_EQ(capture.dropped(), 1u);
    ASSERT_EQ(events.size(), 4u);
    using Phase = spans::Event::Phase;
    EXPECT_EQ(events[0].phase, Phase::Begin);
    EXPECT_EQ(events[1].phase, Phase::Begin);
    EXPECT_EQ(events[2].phase, Phase::End);
    EXPECT_EQ(events[2].id, events[1].id);
    EXPECT_EQ(events[3].phase, Phase::End);
    EXPECT_EQ(events[3].id, events[0].id);
}

TEST(SpanTraceTest, PublishAtCollectorCapKeepsStreamsBalanced)
{
    const SpanResetGuard guard;
    spans::resetForTest();
    spans::enableAll();
    const std::uint32_t stream = spans::reserveStreams(1);
    std::vector<spans::Event> captured;
    {
        spans::Capture capture(stream);
        {
            CTG_SPAN(Region, "outer");
            for (int i = 0; i < 4; ++i) {
                CTG_SPAN(Region, "inner", {{"i", i}});
            }
        }
        captured = capture.take();
    }
    ASSERT_EQ(captured.size(), 10u); // 5 Begins + 5 Ends

    // Cap of 3: "outer" B and the first "inner" B/E fit; later
    // Begins are dropped at the cap and must take their Ends with
    // them, while outer's End (Begin published) still bypasses it.
    spans::setCollectorCapForTest(3);
    spans::publish(captured);
    const auto events = spans::collectedEvents();
    ASSERT_EQ(events.size(), 4u);
    using Phase = spans::Event::Phase;
    EXPECT_EQ(events[0].phase, Phase::Begin); // outer
    EXPECT_EQ(events[1].phase, Phase::Begin); // inner 0
    EXPECT_EQ(events[2].phase, Phase::End);
    EXPECT_EQ(events[2].id, events[1].id);
    EXPECT_EQ(events[3].phase, Phase::End);
    EXPECT_EQ(events[3].id, events[0].id);
    EXPECT_EQ(spans::droppedCount(), 6u);
}

TEST(SpanTraceTest, ExportJsonIsWellFormedTraceEvents)
{
    const SpanResetGuard guard;
    spans::resetForTest();
    spans::enableAll();
    {
        CTG_SPAN(Region, "json.span", {{"pages", 3}});
        CTG_SPAN_EVENT(Region, "json.instant");
    }
    const std::string json = spans::exportJson();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("json.span"), std::string::npos);
    EXPECT_NE(json.find("\"pages\":3"), std::string::npos);
    // Balanced braces/brackets is a cheap proxy for well-formedness;
    // the CI smoke test runs a real JSON parser over a fleet trace.
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));
}

TEST(OnlineHistogramTest, MatchesEmpiricalCdfExactly)
{
    Rng rng(99);
    EmpiricalCdf cdf;
    OnlineHistogram hist;
    for (int i = 0; i < 500; ++i) {
        // Coarse quantization forces duplicates, the case where
        // weighted counting could diverge from the sample vector.
        const double v =
            static_cast<double>(rng.below(40)) / 8.0;
        cdf.add(v);
        hist.add(v);
    }
    for (const double frac :
         {0.0, 0.01, 0.1, 0.25, 0.5, 0.9, 0.99, 1.0})
        EXPECT_EQ(hist.quantile(frac), cdf.quantile(frac)) << frac;
    for (const double x : {-1.0, 0.0, 1.99, 2.5, 4.875, 10.0})
        EXPECT_EQ(hist.fractionAtOrBelow(x),
                  cdf.fractionAtOrBelow(x))
            << x;
}

TEST(OnlineHistogramTest, MergeIsOrderAndPartitionInsensitive)
{
    Rng rng(123);
    std::vector<double> samples;
    for (int i = 0; i < 300; ++i)
        samples.push_back(rng.gaussian(10.0, 3.0));

    OnlineHistogram sequential;
    for (const double v : samples)
        sequential.add(v);

    // Partition into three sinks and merge in two different orders.
    OnlineHistogram parts[3];
    for (std::size_t i = 0; i < samples.size(); ++i)
        parts[i % 3].add(samples[i]);
    OnlineHistogram forward;
    forward.merge(parts[0]);
    forward.merge(parts[1]);
    forward.merge(parts[2]);
    OnlineHistogram backward;
    backward.merge(parts[2]);
    backward.merge(parts[1]);
    backward.merge(parts[0]);

    for (const OnlineHistogram *merged : {&forward, &backward}) {
        EXPECT_EQ(merged->count(), sequential.count());
        EXPECT_TRUE(merged->buckets() == sequential.buckets());
        EXPECT_EQ(merged->mean(), sequential.mean());
        EXPECT_EQ(merged->sum(), sequential.sum());
        for (const double frac : {0.05, 0.5, 0.95})
            EXPECT_EQ(merged->quantile(frac),
                      sequential.quantile(frac));
    }
}

TEST(OnlineHistogramTest, WeightsAndMoments)
{
    OnlineHistogram hist;
    hist.add(2.0, 3);
    hist.add(5.0);
    EXPECT_EQ(hist.count(), 4u);
    EXPECT_EQ(hist.distinct(), 2u);
    EXPECT_EQ(hist.min(), 2.0);
    EXPECT_EQ(hist.max(), 5.0);
    EXPECT_EQ(hist.sum(), 11.0);
    EXPECT_EQ(hist.mean(), 11.0 / 4.0);
    EXPECT_EQ(hist.quantile(0.0), 2.0);
    EXPECT_EQ(hist.quantile(1.0), 5.0);
    EXPECT_EQ(hist.fractionAtOrBelow(2.0), 0.75);
}

} // namespace
} // namespace ctg
