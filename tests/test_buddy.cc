/**
 * @file
 * Buddy allocator unit and property tests: alloc/free round trips,
 * splitting, coalescing, migratetype fallback and pageblock
 * stealing, gigantic allocation, isolation, and range attach/detach.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "base/rng.hh"
#include "base/units.hh"
#include "mem/buddy.hh"
#include "mem/mem_stats.hh"
#include "mem/physmem.hh"
#include "mem/scanner.hh"

namespace ctg
{
namespace
{

class BuddyTest : public ::testing::Test
{
  protected:
    BuddyTest()
        : mem(256_MiB),
          buddy(mem, 0, mem.numFrames(), "test")
    {}

    PhysMem mem;
    BuddyAllocator buddy;
};

TEST_F(BuddyTest, StartsFullyFree)
{
    EXPECT_EQ(buddy.freePageCount(), mem.numFrames());
    EXPECT_EQ(buddy.largestFreeOrder(), static_cast<int>(maxOrder));
    buddy.checkInvariants();
}

TEST_F(BuddyTest, SinglePageRoundTrip)
{
    const Pfn pfn = buddy.allocPages(0, MigrateType::Movable,
                                     AllocSource::User);
    ASSERT_NE(pfn, invalidPfn);
    EXPECT_FALSE(mem.frame(pfn).isFree());
    EXPECT_TRUE(mem.frame(pfn).isHead());
    EXPECT_EQ(buddy.freePageCount(), mem.numFrames() - 1);
    buddy.freePages(pfn);
    EXPECT_EQ(buddy.freePageCount(), mem.numFrames());
    buddy.checkInvariants();
}

TEST_F(BuddyTest, FreeCoalescesBackToMaxOrder)
{
    std::vector<Pfn> pages;
    for (int i = 0; i < 1024; ++i) {
        pages.push_back(buddy.allocPages(0, MigrateType::Movable,
                                         AllocSource::User));
    }
    // All max-order blocks should be consumed or split.
    for (const Pfn p : pages)
        buddy.freePages(p);
    EXPECT_EQ(buddy.freePageCount(), mem.numFrames());
    // After freeing everything, coalescing must restore max-order
    // blocks covering all memory.
    std::uint64_t max_blocks = 0;
    for (unsigned mi = 0; mi < numMigrateTypes; ++mi) {
        max_blocks += buddy.freeBlocks(static_cast<MigrateType>(mi),
                                       maxOrder);
    }
    EXPECT_EQ(max_blocks, mem.numFrames() >> maxOrder);
    buddy.checkInvariants();
}

TEST_F(BuddyTest, OrderAllocationIsAligned)
{
    for (unsigned order = 0; order <= maxOrder; ++order) {
        const Pfn pfn = buddy.allocPages(order, MigrateType::Movable,
                                         AllocSource::User);
        ASSERT_NE(pfn, invalidPfn);
        EXPECT_EQ(pfn % (Pfn{1} << order), 0u)
            << "order " << order;
        EXPECT_EQ(mem.frame(pfn).order(), order);
        buddy.freePages(pfn);
    }
    buddy.checkInvariants();
}

TEST_F(BuddyTest, FallbackStealsPageblockAndRetags)
{
    // Exhaust the native unmovable lists (there are none initially:
    // all pageblocks start movable), forcing a fallback that steals
    // and retags a whole pageblock.
    const Pfn pfn = buddy.allocPages(0, MigrateType::Unmovable,
                                     AllocSource::Slab);
    ASSERT_NE(pfn, invalidPfn);
    EXPECT_GE(buddy.stats().fallbackAllocs, 1u);
    EXPECT_GE(buddy.stats().pageblockSteals, 1u);
    EXPECT_EQ(mem.blockMt(pfn), MigrateType::Unmovable);
    buddy.freePages(pfn);
}

TEST_F(BuddyTest, FreeReturnsToPageblockList)
{
    // Steal a pageblock for unmovable, then free: the pages must go
    // back to the *unmovable* list (pageblock ownership), as in
    // Linux.
    const Pfn pfn = buddy.allocPages(0, MigrateType::Unmovable,
                                     AllocSource::Slab);
    ASSERT_NE(pfn, invalidPfn);
    buddy.freePages(pfn);
    EXPECT_GT(buddy.freePageCount(MigrateType::Unmovable), 0u);
    buddy.checkInvariants();
}

TEST_F(BuddyTest, NoFallbackFailsCleanly)
{
    const Pfn pfn = buddy.allocPages(
        0, MigrateType::Unmovable, AllocSource::Slab, 0,
        AddrPref::None, /*allow_fallback=*/false);
    EXPECT_EQ(pfn, invalidPfn);
    EXPECT_EQ(buddy.stats().failedAllocs, 1u);
}

TEST_F(BuddyTest, AddrPrefBiasesPlacement)
{
    // Fragment the free lists a little so there is a choice.
    std::vector<Pfn> held;
    for (int i = 0; i < 4096; ++i) {
        held.push_back(buddy.allocPages(0, MigrateType::Movable,
                                        AllocSource::User));
    }
    for (std::size_t i = 0; i < held.size(); i += 2)
        buddy.freePages(held[i]);

    const Pfn low = buddy.allocPages(0, MigrateType::Movable,
                                     AllocSource::User, 0,
                                     AddrPref::Low);
    const Pfn high = buddy.allocPages(0, MigrateType::Movable,
                                      AllocSource::User, 0,
                                      AddrPref::High);
    EXPECT_LT(low, high);
}

TEST_F(BuddyTest, GiganticAllocationFromEmptyMemory)
{
    const Pfn head = buddy.allocGigantic(MigrateType::Movable,
                                         AllocSource::User);
    // 256 MiB machine: no 1 GB range exists.
    EXPECT_EQ(head, invalidPfn);
}

TEST(BuddyGigantic, AllocAndFree)
{
    PhysMem mem(2_GiB);
    BuddyAllocator buddy(mem, 0, mem.numFrames(), "big");
    const Pfn head = buddy.allocGigantic(MigrateType::Movable,
                                         AllocSource::User);
    ASSERT_NE(head, invalidPfn);
    EXPECT_EQ(head % pagesPerGiga, 0u);
    EXPECT_EQ(buddy.freePageCount(),
              mem.numFrames() - pagesPerGiga);
    EXPECT_EQ(mem.frame(head).order(), gigaOrder);
    buddy.freePages(head);
    EXPECT_EQ(buddy.freePageCount(), mem.numFrames());
    buddy.checkInvariants();
}

TEST(BuddyGigantic, FailsWhenSinglePageInTheWay)
{
    PhysMem mem(1_GiB);
    BuddyAllocator buddy(mem, 0, mem.numFrames(), "blocked");
    // One allocation anywhere blocks the only aligned 1 GB range —
    // the paper's "a single unmovable 4KB page can render a 1GB
    // region unmovable".
    const Pfn page = buddy.allocPages(0, MigrateType::Unmovable,
                                      AllocSource::Slab);
    ASSERT_NE(page, invalidPfn);
    EXPECT_EQ(buddy.allocGigantic(MigrateType::Movable,
                                  AllocSource::User),
              invalidPfn);
    buddy.freePages(page);
    EXPECT_NE(buddy.allocGigantic(MigrateType::Movable,
                                  AllocSource::User),
              invalidPfn);
}

TEST_F(BuddyTest, IsolationExcludesRangeFromAllocation)
{
    const Pfn lo = 0;
    const Pfn hi = Pfn{1} << maxOrder; // first 4 MB
    buddy.isolateRange(lo, hi);
    buddy.checkInvariants();

    // Allocations must avoid the isolated range entirely.
    std::vector<Pfn> pages;
    for (int i = 0; i < 2000; ++i) {
        const Pfn p = buddy.allocPages(0, MigrateType::Movable,
                                       AllocSource::User);
        ASSERT_NE(p, invalidPfn);
        EXPECT_GE(p, hi);
        pages.push_back(p);
    }
    for (const Pfn p : pages)
        buddy.freePages(p);

    buddy.unisolateRange(lo, hi, MigrateType::Movable);
    buddy.checkInvariants();
    EXPECT_EQ(buddy.freePageCount(MigrateType::Isolate), 0u);
}

TEST_F(BuddyTest, FreeInsideIsolatedRangeStaysIsolated)
{
    // Allocate within the low range first, then isolate; the free
    // must land on the Isolate list, draining the range.
    const Pfn page = buddy.allocPages(0, MigrateType::Movable,
                                      AllocSource::User, 0,
                                      AddrPref::Low);
    ASSERT_LT(page, Pfn{1} << maxOrder);
    buddy.isolateRange(0, Pfn{1} << maxOrder);
    buddy.freePages(page);
    EXPECT_GT(buddy.freePageCount(MigrateType::Isolate), 0u);
    EXPECT_TRUE(buddy.rangeFullyFree(0, Pfn{1} << maxOrder));
    buddy.unisolateRange(0, Pfn{1} << maxOrder,
                         MigrateType::Movable);
    buddy.checkInvariants();
}

TEST_F(BuddyTest, DetachAttachRangeMovesCoverage)
{
    const Pfn cut = Pfn{1} << maxOrder;
    buddy.detachRange(0, cut);
    EXPECT_EQ(buddy.startPfn(), cut);
    EXPECT_EQ(buddy.freePageCount(), mem.numFrames() - cut);

    BuddyAllocator second(mem, 0, 0, "second");
    second.attachRange(0, cut, MigrateType::Unmovable);
    EXPECT_EQ(second.freePageCount(), cut);
    second.checkInvariants();
    buddy.checkInvariants();

    const Pfn p = second.allocPages(3, MigrateType::Unmovable,
                                    AllocSource::Slab);
    ASSERT_NE(p, invalidPfn);
    EXPECT_LT(p, cut);
    second.freePages(p);
}

/** Property test: random alloc/free sequences keep all invariants. */
class BuddyFuzzTest : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(BuddyFuzzTest, RandomOpsPreserveInvariants)
{
    PhysMem mem(64_MiB);
    BuddyAllocator buddy(mem, 0, mem.numFrames(), "fuzz");
    Rng rng(GetParam());

    std::vector<Pfn> live;
    std::uint64_t live_pages = 0;
    for (int step = 0; step < 6000; ++step) {
        if (live.empty() || rng.chance(0.55)) {
            const auto order =
                static_cast<unsigned>(rng.below(maxOrder + 1));
            const auto mt = static_cast<MigrateType>(rng.below(3));
            const Pfn head = buddy.allocPages(order, mt,
                                              AllocSource::User);
            if (head != invalidPfn) {
                live.push_back(head);
                live_pages += Pfn{1} << order;
            }
        } else {
            const std::size_t idx = rng.below(live.size());
            const Pfn head = live[idx];
            live_pages -= Pfn{1} << mem.frame(head).order();
            buddy.freePages(head);
            live[idx] = live.back();
            live.pop_back();
        }
        if (step % 500 == 0)
            buddy.checkInvariants();
        ASSERT_EQ(buddy.freePageCount(),
                  mem.numFrames() - live_pages);
    }
    for (const Pfn head : live)
        buddy.freePages(head);
    buddy.checkInvariants();
    EXPECT_EQ(buddy.freePageCount(), mem.numFrames());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BuddyFuzzTest,
                         ::testing::Values(1, 2, 3, 17, 101, 9999));

/** Scattered unmovable pages poison disproportionate 2 MB blocks —
 * the paper's amplification effect (7.6% of pages -> 34% of
 * blocks). */
TEST(BuddyScattering, UnmovableAmplification)
{
    PhysMem mem(512_MiB);
    BuddyAllocator buddy(mem, 0, mem.numFrames(), "scatter");
    Rng rng(42);

    // Reproduce the production mechanism: memory runs nearly full of
    // churning movable pages; bursts of short-lived unmovable
    // allocations steal whatever free blocks exist at the time, and
    // each burst leaves behind one long-lived survivor page. Over
    // many bursts the survivors end up sprinkled across different
    // pageblocks.
    std::vector<Pfn> movable;
    const std::uint64_t target_fill = mem.numFrames() * 96 / 100;
    while (buddy.freePageCount() > mem.numFrames() - target_fill) {
        const Pfn p = buddy.allocPages(0, MigrateType::Movable,
                                       AllocSource::User);
        ASSERT_NE(p, invalidPfn);
        movable.push_back(p);
    }

    std::vector<Pfn> survivors;
    for (int round = 0; round < 150; ++round) {
        // Movable churn rearranges the free lists between bursts.
        for (int i = 0; i < 400; ++i) {
            const std::size_t idx = rng.below(movable.size());
            buddy.freePages(movable[idx]);
            movable[idx] = movable.back();
            movable.pop_back();
        }
        for (int i = 0; i < 400; ++i) {
            const Pfn p = buddy.allocPages(0, MigrateType::Movable,
                                           AllocSource::User);
            if (p != invalidPfn)
                movable.push_back(p);
        }
        // Unmovable burst: 64 pages, one survives.
        std::vector<Pfn> burst;
        for (int i = 0; i < 64; ++i) {
            const Pfn p = buddy.allocPages(0, MigrateType::Unmovable,
                                           AllocSource::Slab);
            if (p != invalidPfn)
                burst.push_back(p);
        }
        if (!burst.empty()) {
            survivors.push_back(
                burst[rng.below(burst.size())]);
            for (const Pfn p : burst) {
                if (p != survivors.back())
                    buddy.freePages(p);
            }
        }
    }
    for (const Pfn p : movable)
        buddy.freePages(p);

    const double page_ratio = mem.stats().unmovablePageRatio(
        0, mem.numFrames());
    const double block_ratio = mem.stats().unmovableBlockFraction(
        0, mem.numFrames(), scan::order2M);
    // Scattering amplification: the block-level contamination must
    // exceed the page-level ratio by a wide margin (paper: 7.6% of
    // pages contaminate 34% of 2 MB blocks, ~4.5x).
    EXPECT_GT(page_ratio, 0.0);
    EXPECT_GT(block_ratio, 2.0 * page_ratio);
}

} // namespace
} // namespace ctg
