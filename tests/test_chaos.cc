/**
 * @file
 * Chaos tests: deterministic fault injection against every armed
 * site, recovery-path accounting (migration rollback, CHW aborts,
 * deferred region resizes), and full fleet simulations run under
 * injected faults with the cross-subsystem auditor green after
 * every workload step.
 *
 * Every test resets the process-wide injector first, so cases are
 * independent and replay bit-identically under any test ordering.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/rng.hh"
#include "base/span_trace.hh"
#include "base/units.hh"
#include "contiguitas/policy.hh"
#include "contiguitas/region_manager.hh"
#include "contiguitas/resize_controller.hh"
#include "fleet/server.hh"
#include "hw/system.hh"
#include "kernel/migrate.hh"
#include "mem/auditor.hh"
#include "mem/contig_index.hh"
#include "mem/scanner.hh"
#include "sim/fault_injector.hh"

namespace ctg
{
namespace
{

/** Reset the process-wide injector around every case. */
class ChaosTest : public ::testing::Test
{
  protected:
    ChaosTest() { faultInjector().reset(); }
    ~ChaosTest() override { faultInjector().reset(); }
};

/** Relocatable owner tracking its pages by tag. */
class TestOwner : public PageOwnerClient
{
  public:
    std::unordered_map<std::uint64_t, Pfn> where;

    bool
    relocate(std::uint64_t tag, Pfn old_head, Pfn new_head) override
    {
        auto it = where.find(tag);
        if (it == where.end() || it->second != old_head)
            return false;
        it->second = new_head;
        return true;
    }
};

// ---------------------------------------------------------------
// Injector semantics
// ---------------------------------------------------------------

TEST_F(ChaosTest, SpecStringConfiguresSites)
{
    FaultInjector inj;
    EXPECT_TRUE(inj.configure("buddy.alloc_fail:p0.25,"
                              "chw.midcopy_abort:n3,"
                              "region.evac_fail:once,"
                              "kernel.reclaim_fail:o5"));
    EXPECT_TRUE(inj.armed(FaultSite::BuddyAllocFail));
    EXPECT_TRUE(inj.armed(FaultSite::ChwMidcopyAbort));
    EXPECT_TRUE(inj.armed(FaultSite::RegionEvacFail));
    EXPECT_TRUE(inj.armed(FaultSite::KernelReclaimFail));
    EXPECT_FALSE(inj.armed(FaultSite::MigrateDstFail));

    // Malformed tokens are skipped, valid ones still arm.
    FaultInjector inj2;
    EXPECT_FALSE(inj2.configure("nonsense:p0.5,migrate.dst_fail:n2"));
    EXPECT_TRUE(inj2.armed(FaultSite::MigrateDstFail));
    EXPECT_FALSE(inj2.anyArmed() &&
                 inj2.armed(FaultSite::BuddyAllocFail));
}

TEST_F(ChaosTest, SiteNamesRoundTrip)
{
    for (unsigned i = 0; i < numFaultSites; ++i) {
        const auto site = static_cast<FaultSite>(i);
        FaultSite parsed;
        ASSERT_TRUE(
            FaultInjector::siteFromName(FaultInjector::siteName(site),
                                        &parsed));
        EXPECT_EQ(parsed, site);
    }
    FaultSite out;
    EXPECT_FALSE(FaultInjector::siteFromName("no.such_site", &out));
}

TEST_F(ChaosTest, EveryNthFiresOnSchedule)
{
    FaultInjector inj;
    inj.arm(FaultSite::BuddyAllocFail, FaultSpec::everyNth(3));
    std::vector<bool> fires;
    for (int i = 0; i < 9; ++i)
        fires.push_back(inj.shouldFail(FaultSite::BuddyAllocFail));
    const std::vector<bool> expect = {false, false, true,
                                      false, false, true,
                                      false, false, true};
    EXPECT_EQ(fires, expect);
    EXPECT_EQ(inj.siteStats(FaultSite::BuddyAllocFail).fires, 3u);
    EXPECT_EQ(inj.siteStats(FaultSite::BuddyAllocFail).evaluations,
              9u);
}

TEST_F(ChaosTest, OneShotFiresOnceThenDisarms)
{
    FaultInjector inj;
    inj.arm(FaultSite::MigrateDstFail, FaultSpec::oneShot(4));
    for (int i = 1; i <= 3; ++i)
        EXPECT_FALSE(inj.shouldFail(FaultSite::MigrateDstFail));
    EXPECT_TRUE(inj.shouldFail(FaultSite::MigrateDstFail));
    EXPECT_FALSE(inj.anyArmed());
    // Disarmed: further probes never fire.
    for (int i = 0; i < 8; ++i)
        EXPECT_FALSE(inj.shouldFail(FaultSite::MigrateDstFail));
    EXPECT_EQ(inj.siteStats(FaultSite::MigrateDstFail).fires, 1u);
}

TEST_F(ChaosTest, ProbabilityTriggerReplaysExactly)
{
    const auto record = [](std::uint64_t seed) {
        FaultInjector inj(seed);
        inj.arm(FaultSite::BuddyAllocFail, FaultSpec::chance(0.3));
        std::vector<bool> fires;
        for (int i = 0; i < 256; ++i)
            fires.push_back(inj.shouldFail(FaultSite::BuddyAllocFail));
        return fires;
    };
    const auto a = record(42);
    EXPECT_EQ(a, record(42));
    EXPECT_NE(a, record(43));
    // Sanity: the stream actually mixes fires and non-fires.
    EXPECT_GT(std::count(a.begin(), a.end(), true), 0);
    EXPECT_GT(std::count(a.begin(), a.end(), false), 0);
}

TEST_F(ChaosTest, SiteStreamsAreIndependent)
{
    // Arming (and probing) a second site must not shift the first
    // site's firing pattern — each stream is seeded per site.
    const auto record = [](bool interleave) {
        FaultInjector inj(7);
        inj.arm(FaultSite::BuddyAllocFail, FaultSpec::chance(0.4));
        if (interleave)
            inj.arm(FaultSite::RegionEvacFail, FaultSpec::chance(0.4));
        std::vector<bool> fires;
        for (int i = 0; i < 128; ++i) {
            fires.push_back(inj.shouldFail(FaultSite::BuddyAllocFail));
            if (interleave)
                inj.shouldFail(FaultSite::RegionEvacFail);
        }
        return fires;
    };
    EXPECT_EQ(record(false), record(true));
}

// ---------------------------------------------------------------
// Buddy and software-migration fault paths
// ---------------------------------------------------------------

TEST_F(ChaosTest, BuddyInjectedFailuresKeepInvariants)
{
    PhysMem mem(64_MiB);
    BuddyAllocator alloc(mem, 0, mem.numFrames(), "chaos");
    MemAuditor auditor(mem);
    auditor.addAllocator(&alloc);

    faultInjector().arm(FaultSite::BuddyAllocFail,
                        FaultSpec::everyNth(7));
    std::vector<Pfn> held;
    std::uint64_t held_pages = 0;
    Rng rng(0xc4a05);
    for (int i = 0; i < 2000; ++i) {
        if (rng.chance(0.6)) {
            const unsigned order =
                static_cast<unsigned>(rng.below(4));
            const Pfn p = alloc.allocPages(order, MigrateType::Movable,
                                           AllocSource::User);
            if (p != invalidPfn) {
                held.push_back(p);
                held_pages += Pfn{1} << order;
            }
        } else if (!held.empty()) {
            const std::size_t i2 = rng.below(held.size());
            held_pages -=
                Pfn{1} << mem.frame(held[i2]).order();
            alloc.freePages(held[i2]);
            held[i2] = held.back();
            held.pop_back();
        }
    }
    EXPECT_GT(alloc.stats().injectedFailures, 0u);
    EXPECT_GE(alloc.stats().failedAllocs,
              alloc.stats().injectedFailures);
    // Page conservation in spite of every injected failure.
    EXPECT_EQ(alloc.freePageCount() + held_pages, alloc.totalPages());
    const AuditReport report = auditor.audit();
    EXPECT_TRUE(report.ok()) << report.summary();
}

TEST_F(ChaosTest, GiganticInjectedFailureLeavesFreeSpaceIntact)
{
    PhysMem mem(1_GiB);
    BuddyAllocator alloc(mem, 0, mem.numFrames(), "g");
    const std::uint64_t free_before = alloc.freePageCount();

    faultInjector().arm(FaultSite::BuddyGiganticFail,
                        FaultSpec::oneShot());
    EXPECT_EQ(alloc.allocGigantic(MigrateType::Unmovable,
                                  AllocSource::User),
              invalidPfn);
    EXPECT_EQ(alloc.stats().injectedFailures, 1u);
    EXPECT_EQ(alloc.stats().giganticFailures, 1u);
    EXPECT_EQ(alloc.freePageCount(), free_before);
    alloc.checkInvariants();

    // One-shot spent: the fully-free gigabyte is found after all.
    const Pfn head = alloc.allocGigantic(MigrateType::Unmovable,
                                         AllocSource::User);
    ASSERT_NE(head, invalidPfn);
    alloc.freePages(head);
    EXPECT_EQ(alloc.freePageCount(), free_before);
}

TEST_F(ChaosTest, MigrateRollsBackOnInjectedRelocateFault)
{
    PhysMem mem(64_MiB);
    BuddyAllocator alloc(mem, 0, mem.numFrames(), "m");
    OwnerRegistry owners;
    TestOwner owner;
    const std::uint16_t cid = owners.registerClient(&owner);

    const Pfn src = alloc.allocPages(
        0, MigrateType::Movable, AllocSource::User,
        OwnerRegistry::makeOwner(cid, 1));
    ASSERT_NE(src, invalidPfn);
    owner.where[1] = src;

    const std::uint64_t free_before = alloc.freePageCount();
    const MigrateStats before = globalMigrateStats();

    faultInjector().arm(FaultSite::MigrateRelocateFail,
                        FaultSpec::oneShot());
    Pfn dst = invalidPfn;
    const MigrateResult r =
        migrateBlock(alloc, alloc, owners, src, AddrPref::None,
                     MigrateType::Movable, &dst);
    EXPECT_EQ(r, MigrateResult::Unmovable);
    // Rollback: the destination went back to the free lists, the
    // source is untouched, and the owner still points at it.
    EXPECT_EQ(alloc.freePageCount(), free_before);
    EXPECT_FALSE(mem.frame(src).isFree());
    EXPECT_EQ(owner.where.at(1), src);
    EXPECT_EQ(globalMigrateStats().injectedFaults,
              before.injectedFaults + 1);
    EXPECT_EQ(globalMigrateStats().unmovable, before.unmovable + 1);

    // With the one-shot spent, the same migration succeeds.
    EXPECT_EQ(migrateBlock(alloc, alloc, owners, src, AddrPref::None,
                           MigrateType::Movable, &dst),
              MigrateResult::Ok);
    EXPECT_EQ(owner.where.at(1), dst);
    alloc.checkInvariants();
}

TEST_F(ChaosTest, MigrateFailsCleanlyOnInjectedDstFault)
{
    PhysMem mem(64_MiB);
    BuddyAllocator alloc(mem, 0, mem.numFrames(), "m");
    OwnerRegistry owners;
    TestOwner owner;
    const std::uint16_t cid = owners.registerClient(&owner);
    const Pfn src = alloc.allocPages(
        0, MigrateType::Movable, AllocSource::User,
        OwnerRegistry::makeOwner(cid, 1));
    ASSERT_NE(src, invalidPfn);
    owner.where[1] = src;

    const std::uint64_t free_before = alloc.freePageCount();
    const MigrateStats before = globalMigrateStats();
    faultInjector().arm(FaultSite::MigrateDstFail,
                        FaultSpec::oneShot());
    EXPECT_EQ(migrateBlock(alloc, alloc, owners, src, AddrPref::None,
                           MigrateType::Movable, nullptr),
              MigrateResult::NoMemory);
    EXPECT_EQ(alloc.freePageCount(), free_before);
    EXPECT_EQ(owner.where.at(1), src);
    EXPECT_EQ(globalMigrateStats().noMemory, before.noMemory + 1);
    EXPECT_EQ(globalMigrateStats().injectedFaults,
              before.injectedFaults + 1);
    alloc.checkInvariants();
}

// ---------------------------------------------------------------
// Contiguitas-HW abort paths
// ---------------------------------------------------------------

TEST_F(ChaosTest, ChwMidcopyAbortAccountsAndNotifies)
{
    HwSystem hw;
    faultInjector().arm(FaultSite::ChwMidcopyAbort,
                        FaultSpec::oneShot(10));
    bool completed = false;
    bool aborted = false;
    ChwEngine::Descriptor desc;
    desc.src = 0x300;
    desc.dst = 0x700;
    desc.mode = ChwMode::Noncacheable;
    desc.onComplete = [&completed] { completed = true; };
    desc.onAbort = [&aborted] { aborted = true; };
    ASSERT_TRUE(hw.chw().submitMigrate(desc));
    hw.drain();

    EXPECT_FALSE(completed);
    EXPECT_TRUE(aborted);
    EXPECT_EQ(hw.chw().stats().migrationsStarted, 1u);
    EXPECT_EQ(hw.chw().stats().migrationsCompleted, 0u);
    EXPECT_EQ(hw.chw().stats().migrationsAborted, 1u);
    EXPECT_EQ(hw.chw().inFlight(), 0u);
    // The mapping is gone: the page is no longer migrating.
    EXPECT_FALSE(hw.chw().migrating(0x300));
    EXPECT_LT(hw.chw().stats().linesCopied, std::uint64_t{linesPerPage});
}

TEST_F(ChaosTest, ChwOsClearMidCopyCountsSingleAbort)
{
    HwSystem hw;
    unsigned aborts = 0;
    ChwEngine::Descriptor desc;
    desc.src = 0x300;
    desc.dst = 0x700;
    desc.mode = ChwMode::Noncacheable;
    desc.onAbort = [&aborts] { ++aborts; };
    ASSERT_TRUE(hw.chw().submitMigrate(desc));
    for (int i = 0; i < 8; ++i)
        hw.eventq().step();
    ASSERT_TRUE(hw.chw().migrating(0x300));
    hw.chw().clear(0x300);
    // Stale copy events drain without double-counting the abort.
    hw.drain();
    EXPECT_EQ(aborts, 1u);
    EXPECT_EQ(hw.chw().stats().migrationsAborted, 1u);
    EXPECT_EQ(hw.chw().stats().migrationsCompleted, 0u);
    EXPECT_EQ(hw.chw().inFlight(), 0u);
}

TEST_F(ChaosTest, ChwClearAfterCompletionIsNotAnAbort)
{
    HwSystem hw;
    bool completed = false;
    ChwEngine::Descriptor desc;
    desc.src = 0x300;
    desc.dst = 0x700;
    desc.mode = ChwMode::Noncacheable;
    desc.onComplete = [&completed] { completed = true; };
    ASSERT_TRUE(hw.chw().submitMigrate(desc));
    hw.drain();
    ASSERT_TRUE(completed);
    hw.chw().clear(0x300);
    EXPECT_EQ(hw.chw().stats().migrationsAborted, 0u);
    EXPECT_EQ(hw.chw().stats().migrationsCompleted, 1u);
}

TEST_F(ChaosTest, ChwInstallFaultRejectsDescriptor)
{
    HwSystem hw;
    faultInjector().arm(FaultSite::ChwInstallFail,
                        FaultSpec::oneShot());
    ChwEngine::Descriptor desc;
    desc.src = 0x300;
    desc.dst = 0x700;
    desc.mode = ChwMode::Noncacheable;
    EXPECT_FALSE(hw.chw().submitMigrate(desc));
    EXPECT_EQ(hw.chw().stats().installsRejected, 1u);
    EXPECT_EQ(hw.chw().stats().migrationsStarted, 0u);
    // One-shot spent: the resubmission goes through.
    ASSERT_TRUE(hw.chw().submitMigrate(desc));
    hw.drain();
    EXPECT_EQ(hw.chw().stats().migrationsCompleted, 1u);
}

TEST_F(ChaosTest, ChwStartedReconcilesUnderRandomAborts)
{
    HwSystem hw;
    faultInjector().arm(FaultSite::ChwMidcopyAbort,
                        FaultSpec::chance(0.02));
    unsigned submitted = 0;
    for (Pfn i = 0; i < 12; ++i) {
        ChwEngine::Descriptor desc;
        desc.src = 0x1000 + i * 2;
        desc.dst = 0x8000 + i * 2;
        desc.mode = ChwMode::Noncacheable;
        ASSERT_TRUE(hw.chw().submitMigrate(desc));
        ++submitted;
        hw.drain();
        if (!hw.chw().migrating(desc.src))
            continue;
        hw.chw().clear(desc.src);
    }
    const ChwEngine::Stats &s = hw.chw().stats();
    EXPECT_EQ(s.migrationsStarted, submitted);
    EXPECT_EQ(s.migrationsStarted, s.migrationsCompleted +
                                       s.migrationsAborted +
                                       hw.chw().inFlight());
    EXPECT_GT(s.migrationsAborted, 0u);
    EXPECT_GT(s.migrationsCompleted, 0u);
}

// ---------------------------------------------------------------
// Region resize deferral and backoff
// ---------------------------------------------------------------

class RegionChaosTest : public ChaosTest
{
  protected:
    RegionChaosTest()
        : mem(256_MiB)
    {
        RegionManager::Config config;
        config.initialUnmovablePages = (32_MiB) / pageBytes;
        config.minUnmovablePages = (8_MiB) / pageBytes;
        regions = std::make_unique<RegionManager>(mem, owners, config);
        cid = owners.registerClient(&owner);
    }

    /** Populate the range just above the boundary with movable
     * owner-backed pages, so expansion must evacuate. */
    void
    seedBorderMovablePages(int count)
    {
        for (int i = 0; i < count; ++i) {
            const std::uint64_t tag = nextTag++;
            const Pfn p = regions->movable().allocPages(
                0, MigrateType::Movable, AllocSource::User,
                OwnerRegistry::makeOwner(cid, tag), AddrPref::Low);
            ASSERT_NE(p, invalidPfn);
            owner.where[tag] = p;
        }
    }

    AuditReport
    auditAll()
    {
        MemAuditor auditor(mem);
        regions->attachAuditorChecks(auditor);
        return auditor.audit();
    }

    PhysMem mem;
    OwnerRegistry owners;
    TestOwner owner;
    std::uint16_t cid = 0;
    std::uint64_t nextTag = 1;
    std::unique_ptr<RegionManager> regions;
};

TEST_F(RegionChaosTest, InjectedEvacFailureDefersExpansion)
{
    seedBorderMovablePages(256);
    faultInjector().arm(FaultSite::RegionEvacFail,
                        FaultSpec::oneShot());
    const Pfn before = regions->boundary();
    EXPECT_EQ(regions->expandUnmovable((8_MiB) / pageBytes), 0u);
    EXPECT_EQ(regions->boundary(), before);
    EXPECT_EQ(regions->stats().injectedEvacFails, 1u);
    EXPECT_EQ(regions->stats().deferredEnqueued, 1u);
    EXPECT_TRUE(regions->deferredResizePending());
    {
        const AuditReport report = auditAll();
        EXPECT_TRUE(report.ok()) << report.summary();
    }

    // Backoff: two waiting pumps, then the retry succeeds (the
    // one-shot fault is spent and the pages are software-movable).
    EXPECT_EQ(regions->pumpDeferredResizes(), 0u);
    EXPECT_EQ(regions->pumpDeferredResizes(), 0u);
    EXPECT_EQ(regions->stats().deferredRetries, 0u);
    EXPECT_GT(regions->pumpDeferredResizes(), 0u);
    EXPECT_EQ(regions->stats().deferredRetries, 1u);
    EXPECT_EQ(regions->stats().deferredCompleted, 1u);
    EXPECT_FALSE(regions->deferredResizePending());
    EXPECT_GT(regions->boundary(), before);
    const AuditReport report = auditAll();
    EXPECT_TRUE(report.ok()) << report.summary();
}

TEST_F(RegionChaosTest, PinnedBorderShrinkRetriesWithBackoff)
{
    // A pinned IO page at the top of the unmovable region blocks the
    // shrink (no HW migration in this rig).
    const std::uint64_t tag = nextTag++;
    const Pfn page = regions->unmovable().allocPages(
        0, MigrateType::Unmovable, AllocSource::Networking,
        OwnerRegistry::makeOwner(cid, tag), AddrPref::High);
    ASSERT_NE(page, invalidPfn);
    owner.where[tag] = page;
    mem.setRangePinned(page, page + 1, true);

    const Pfn before = regions->boundary();
    EXPECT_EQ(regions->shrinkUnmovable((8_MiB) / pageBytes), 0u);
    EXPECT_TRUE(regions->deferredResizePending());
    // Accounting stayed consistent across the failed attempt: the
    // border range was un-isolated and nothing leaked.
    EXPECT_EQ(regions->unmovable().totalPages() +
                  regions->movable().totalPages(),
              mem.numFrames());
    {
        const AuditReport report = auditAll();
        EXPECT_TRUE(report.ok()) << report.summary();
    }

    // First retry (after the 2-pump wait) still hits the pin.
    EXPECT_EQ(regions->pumpDeferredResizes(), 0u);
    EXPECT_EQ(regions->pumpDeferredResizes(), 0u);
    EXPECT_EQ(regions->pumpDeferredResizes(), 0u);
    EXPECT_EQ(regions->stats().deferredRetries, 1u);
    EXPECT_TRUE(regions->deferredResizePending());

    // Unpin; the next retry fires only after the doubled (4-pump)
    // backoff and then succeeds.
    mem.setRangePinned(page, page + 1, false);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(regions->pumpDeferredResizes(), 0u);
    EXPECT_GT(regions->pumpDeferredResizes(), 0u);
    EXPECT_EQ(regions->stats().deferredRetries, 2u);
    EXPECT_EQ(regions->stats().deferredCompleted, 1u);
    EXPECT_FALSE(regions->deferredResizePending());
    EXPECT_LT(regions->boundary(), before);
    // The IO page was evacuated deeper into the region.
    EXPECT_LT(owner.where.at(tag), regions->boundary());
    const AuditReport report = auditAll();
    EXPECT_TRUE(report.ok()) << report.summary();
}

TEST_F(RegionChaosTest, DeferredResizeDropsAfterRetryCap)
{
    // A linear-map page at the border: nothing can ever move it, so
    // every retry fails until the queue gives up.
    const Pfn page = regions->unmovable().allocPages(
        0, MigrateType::Unmovable, AllocSource::Slab, 0,
        AddrPref::High);
    ASSERT_NE(page, invalidPfn);
    EXPECT_EQ(regions->shrinkUnmovable((8_MiB) / pageBytes), 0u);
    ASSERT_TRUE(regions->deferredResizePending());

    int pumps = 0;
    while (regions->deferredResizePending() && pumps < 100) {
        regions->pumpDeferredResizes();
        ++pumps;
    }
    EXPECT_FALSE(regions->deferredResizePending());
    EXPECT_EQ(regions->stats().deferredRetries,
              std::uint64_t{RegionManager::maxResizeRetries});
    EXPECT_EQ(regions->stats().deferredDropped, 1u);
    const AuditReport report = auditAll();
    EXPECT_TRUE(report.ok()) << report.summary();
}

TEST_F(RegionChaosTest, OppositeDirectionSupersedesQueuedResize)
{
    // Queue a blocked shrink...
    const Pfn pinned = regions->unmovable().allocPages(
        0, MigrateType::Unmovable, AllocSource::Slab, 0,
        AddrPref::High);
    ASSERT_NE(pinned, invalidPfn);
    EXPECT_EQ(regions->shrinkUnmovable((8_MiB) / pageBytes), 0u);
    ASSERT_TRUE(regions->deferredResizePending());

    // ...then fail an expansion: the stale shrink is superseded.
    seedBorderMovablePages(64);
    faultInjector().arm(FaultSite::RegionEvacFail,
                        FaultSpec::oneShot());
    EXPECT_EQ(regions->expandUnmovable((8_MiB) / pageBytes), 0u);
    EXPECT_EQ(regions->stats().deferredSuperseded, 1u);
    EXPECT_EQ(regions->stats().deferredEnqueued, 2u);
    EXPECT_TRUE(regions->deferredResizePending());

    // The queued expansion completes once its backoff elapses.
    EXPECT_EQ(regions->pumpDeferredResizes(), 0u);
    EXPECT_EQ(regions->pumpDeferredResizes(), 0u);
    EXPECT_GT(regions->pumpDeferredResizes(), 0u);
    EXPECT_EQ(regions->stats().deferredCompleted, 1u);
}

// ---------------------------------------------------------------
// Kernel reclaim faults and auditor sensitivity
// ---------------------------------------------------------------

class CountingShrinker : public Shrinker
{
  public:
    std::uint64_t
    shrink(std::uint64_t target_pages) override
    {
        ++calls;
        return target_pages;
    }

    unsigned calls = 0;
};

TEST_F(ChaosTest, KernelReclaimFaultReturnsNoProgress)
{
    KernelConfig config;
    config.memBytes = 256_MiB;
    config.kernelTextBytes = 2_MiB;
    Kernel kernel(config);
    CountingShrinker shrinker;
    kernel.registerShrinker(&shrinker);

    faultInjector().arm(FaultSite::KernelReclaimFail,
                        FaultSpec::oneShot());
    EXPECT_EQ(kernel.reclaim(64), 0u);
    // The injected failure short-circuits before any shrinker runs.
    EXPECT_EQ(shrinker.calls, 0u);
    // Next attempt reaches the shrinkers again.
    EXPECT_GT(kernel.reclaim(64), 0u);
    EXPECT_GT(shrinker.calls, 0u);
}

TEST_F(ChaosTest, AuditorDetectsFrameCorruption)
{
    PhysMem mem(64_MiB);
    BuddyAllocator alloc(mem, 0, mem.numFrames(), "c");
    MemAuditor auditor(mem);
    auditor.addAllocator(&alloc);

    const Pfn p = alloc.allocPages(0, MigrateType::Movable,
                                   AllocSource::User);
    ASSERT_NE(p, invalidPfn);
    ASSERT_TRUE(auditor.audit().ok());

    // Flip the allocated frame to "free" behind the allocator's
    // back: page conservation must flag it.
    mem.frame(p).setFree(true);
    const AuditReport bad = auditor.audit();
    EXPECT_FALSE(bad.ok());
    EXPECT_GT(auditor.stats().violations, 0u);

    mem.frame(p).setFree(false);
    EXPECT_TRUE(auditor.audit().ok());
}

TEST_F(ChaosTest, KernelAuditorCoversOwnerAndPinTables)
{
    KernelConfig config;
    config.memBytes = 256_MiB;
    config.kernelTextBytes = 2_MiB;
    Kernel kernel(config);
    const auto auditor = kernel.makeAuditor();
    {
        const AuditReport report = auditor->audit();
        EXPECT_TRUE(report.ok()) << report.summary();
    }

    // A pin-table entry whose frame is not pinned is a violation.
    AllocRequest req;
    req.order = 0;
    req.mt = MigrateType::Movable;
    req.source = AllocSource::User;
    const Pfn page = kernel.allocPages(req);
    ASSERT_NE(page, invalidPfn);
    const std::uint64_t id = kernel.pinPagesId(page);
    ASSERT_NE(id, 0u);
    const Pfn where = kernel.pinnedLocation(id);
    ASSERT_TRUE(auditor->audit().ok());
    kernel.mem().frame(where).setPinned(false);
    EXPECT_FALSE(auditor->audit().ok());
    kernel.mem().frame(where).setPinned(true);
    kernel.unpinById(id);
    EXPECT_TRUE(auditor->audit().ok());
}

// ---------------------------------------------------------------
// Resize-controller epsilon (sub-1% pressure handling)
// ---------------------------------------------------------------

TEST(ResizeControllerEpsilon, ZeroPressureStaysFiniteAndBounded)
{
    ResizeController ctrl{ResizeParams{}};
    const ResizeParams params;
    // Expand with a perfectly calm movable region: the
    // counter-pressure term is T_mov/minPressure * c_me, not inf.
    const ResizeDecision d = ctrl.evaluate(10.0, 0.0, 100000);
    EXPECT_EQ(d.direction, ResizeDirection::Expand);
    const double expect =
        10.0 / params.thresholdUnmov * params.cue +
        params.thresholdMov / ResizeController::minPressure *
            params.cme;
    EXPECT_NEAR(d.factor, expect, 1e-9);
    EXPECT_LT(d.factor, params.maxFactor);
    EXPECT_EQ(d.targetPages,
              static_cast<std::uint64_t>(
                  std::ceil((1.0 + expect) * 100000.0)));

    // Both pressures zero: modest shrink, not shrink-to-nothing.
    const ResizeDecision idle = ctrl.evaluate(0.0, 0.0, 100000);
    EXPECT_EQ(idle.direction, ResizeDirection::Shrink);
    EXPECT_NEAR(idle.factor,
                params.thresholdUnmov /
                    ResizeController::minPressure * params.cus,
                1e-9);
    EXPECT_GT(idle.targetPages, 100000u / 2);
}

TEST(ResizeControllerEpsilon, SubPercentPressuresKeepTheirGradient)
{
    // The paper's max(P, 1) floor would make these two readings
    // indistinguishable; the epsilon floor preserves the gradient.
    ResizeController ctrl{ResizeParams{}};
    const ResizeDecision calm = ctrl.evaluate(10.0, 0.3, 100000);
    const ResizeDecision calmer = ctrl.evaluate(10.0, 0.9, 100000);
    EXPECT_EQ(calm.direction, ResizeDirection::Expand);
    EXPECT_EQ(calmer.direction, ResizeDirection::Expand);
    EXPECT_GT(calm.factor, calmer.factor);
    EXPECT_GT(calm.targetPages, calmer.targetPages);
}

// ---------------------------------------------------------------
// Fleet chaos: whole simulations under fire, audited every step
// ---------------------------------------------------------------

Server::Config
chaosServer(bool contiguitas)
{
    Server::Config config;
    config.memBytes = 512_MiB;
    config.policy.name = contiguitas ? "contiguitas" : "vanilla";
    config.kind = WorkloadKind::Web;
    config.uptimeSec = 10.0;
    config.prefragment = true;
    config.seed = 0xc4a05;
    return config;
}

void
armFleetFaults()
{
    FaultInjector &inj = faultInjector();
    inj.arm(FaultSite::BuddyAllocFail, FaultSpec::chance(0.002));
    inj.arm(FaultSite::BuddyGiganticFail, FaultSpec::chance(0.5));
    inj.arm(FaultSite::MigrateDstFail, FaultSpec::chance(0.03));
    inj.arm(FaultSite::MigrateRelocateFail, FaultSpec::chance(0.03));
    inj.arm(FaultSite::RegionEvacFail, FaultSpec::chance(0.15));
    inj.arm(FaultSite::KernelReclaimFail, FaultSpec::chance(0.1));
}

TEST_F(ChaosTest, ContiguitasFleetSurvivesInjectedFaults)
{
    Server server(chaosServer(true));
    armFleetFaults();
    server.enableStepAudit();
    const ServerScan scan = server.run(); // audits every step
    EXPECT_GT(scan.freePages, 0u);
    ASSERT_NE(server.auditor(), nullptr);
    EXPECT_GT(server.auditor()->stats().audits, 10u);
    EXPECT_EQ(server.auditor()->stats().violations, 0u);
    // Faults actually fired into the run.
    EXPECT_GT(faultInjector().totalFires(), 0u);
    EXPECT_GT(faultInjector()
                  .siteStats(FaultSite::BuddyAllocFail)
                  .evaluations,
              0u);
}

TEST_F(ChaosTest, VanillaFleetSurvivesInjectedFaults)
{
    Server server(chaosServer(false));
    armFleetFaults();
    server.enableStepAudit();
    const ServerScan scan = server.run();
    EXPECT_GT(scan.freePages, 0u);
    EXPECT_EQ(server.auditor()->stats().violations, 0u);
    EXPECT_GT(faultInjector().totalFires(), 0u);
}

/**
 * ContigIndex exactness under maximal chaos: EVERY fault site armed,
 * Contiguitas server (region resizes, migrations, confinement) with
 * the step audit on — audit() cross-checks the index against a
 * reference full scan after pretreatment and every workload step, so
 * any fault-injected rollback that left the index stale panics the
 * run. A final explicit comparison covers the post-run state too.
 */
TEST_F(ChaosTest, ContigIndexStaysExactWithEveryFaultSiteArmed)
{
    FaultInjector &inj = faultInjector();
    for (unsigned i = 0; i < numFaultSites; ++i)
        inj.arm(static_cast<FaultSite>(i), FaultSpec::chance(0.02));

    Server server(chaosServer(true));
    server.enableStepAudit();
    server.run();
    EXPECT_EQ(server.auditor()->stats().violations, 0u);
    EXPECT_GT(inj.totalFires(), 0u);

    const PhysMem &mem = server.kernel().mem();
    const ContigIndex &idx = mem.contigIndex();
    EXPECT_EQ(idx.freePages(),
              scan::reference::freePages(mem, 0, mem.numFrames()));
    for (const unsigned order :
         {scan::order2M, scan::order32M, scan::order1G}) {
        EXPECT_EQ(idx.fullyFreeBlocks(order),
                  scan::reference::freeAlignedBlocks(
                      mem, 0, mem.numFrames(), order));
        EXPECT_EQ(idx.taintedBlocks(order),
                  scan::reference::unmovableAlignedBlocks(
                      mem, 0, mem.numFrames(), order));
    }
}

/** The index-driven hot paths (compaction, region resizing, contig
 * alloc) and the exact AddrPref descent must hold up with every
 * fault site armed: the step audit cross-checks the descent queries
 * against reference scans after each second of simulated load. */
TEST_F(ChaosTest, IndexHotPathsSurviveEveryFaultSiteWithExactPref)
{
    FaultInjector &inj = faultInjector();
    for (unsigned i = 0; i < numFaultSites; ++i)
        inj.arm(static_cast<FaultSite>(i), FaultSpec::chance(0.02));

    Server::Config config = chaosServer(true);
    config.contigIndexReads = true;
    config.exactPref = true;
    Server server(config);
    server.enableStepAudit();
    server.run();
    EXPECT_EQ(server.auditor()->stats().violations, 0u);
    EXPECT_GT(inj.totalFires(), 0u);
}

/** Every policy in the registry — not just the two originals — must
 * survive the full fault menu with the step audit on: a registry
 * entry that cannot take chaos is not fit for the sweep matrix. */
TEST_F(ChaosTest, EveryRegistryPolicySurvivesEveryFaultSite)
{
    for (const PolicyRegistry::Entry &entry :
         PolicyRegistry::instance().entries()) {
        FaultInjector &inj = faultInjector();
        inj.reset(0xc4a05);
        for (unsigned i = 0; i < numFaultSites; ++i)
            inj.arm(static_cast<FaultSite>(i),
                    FaultSpec::chance(0.02));

        Server::Config config = chaosServer(true);
        config.policy = {};
        ASSERT_TRUE(parsePolicySpec(entry.name, &config.policy))
            << entry.name;
        Server server(config);
        server.enableStepAudit();
        const ServerScan scan = server.run();
        EXPECT_GT(scan.freePages, 0u) << entry.name;
        ASSERT_NE(server.auditor(), nullptr) << entry.name;
        EXPECT_GT(server.auditor()->stats().audits, 5u)
            << entry.name;
        EXPECT_EQ(server.auditor()->stats().violations, 0u)
            << entry.name;
        EXPECT_GT(inj.totalFires(), 0u) << entry.name;
        inj.reset();
    }
}

TEST_F(ChaosTest, ChaosRunsReplayBitIdentically)
{
    const auto once = [] {
        faultInjector().reset(0xfee1);
        Server server(chaosServer(true));
        armFleetFaults();
        server.enableStepAudit();
        const ServerScan scan = server.run();
        std::vector<std::uint64_t> record{scan.freePages,
                                          scan.free2mBlocks};
        for (unsigned i = 0; i < numFaultSites; ++i) {
            const auto &s =
                faultInjector().siteStats(static_cast<FaultSite>(i));
            record.push_back(s.evaluations);
            record.push_back(s.fires);
        }
        return record;
    };
    EXPECT_EQ(once(), once());
}

// ---------------------------------------------------------------
// Chaos x span tracing: faults land in the causal tree, and
// emitting them never perturbs the simulation
// ---------------------------------------------------------------

/** Clean span-collector slate around a case (mask off, events
 * cleared) even when an assertion bails out early. */
struct SpanResetGuard
{
    SpanResetGuard() { spans::resetForTest(); }
    ~SpanResetGuard() { spans::resetForTest(); }
};

/**
 * Every armed-site fire is an annotated Instant named after the
 * site, parented to the innermost open span — the migration or
 * alloc it is about to fail — so a Perfetto view of a chaos run
 * shows exactly where each injection landed.
 */
TEST_F(ChaosTest, ArmedFaultSitesEmitAnnotatedSpanInstants)
{
    const SpanResetGuard guard;
    spans::enableAll();
    faultInjector().arm(FaultSite::BuddyAllocFail,
                        FaultSpec::everyNth(2));

    std::uint64_t probe_id = 0;
    {
        CTG_SPAN_NAMED(probe, Faults, "chaos.probe",
                       {{"probes", 4}});
        probe_id = probe.id();
        for (int i = 0; i < 4; ++i)
            faultInjector().shouldFail(FaultSite::BuddyAllocFail);
    }
    ASSERT_NE(probe_id, 0u);

    const char *const site =
        FaultInjector::siteName(FaultSite::BuddyAllocFail);
    std::vector<spans::Event> fires;
    for (const spans::Event &e : spans::collectedEvents()) {
        if (e.phase == spans::Event::Phase::Instant &&
            std::string(e.name) == site) {
            fires.push_back(e);
        }
    }
    // everyNth(2) over four probes: evaluations 2 and 4 fire.
    ASSERT_EQ(fires.size(), 2u);
    for (const spans::Event &e : fires) {
        EXPECT_EQ(e.flag, TraceFlag::Faults);
        EXPECT_EQ(e.parent, probe_id)
            << "fault instant not bound to the enclosing span";
        ASSERT_EQ(e.nargs, 2u);
        EXPECT_STREQ(e.args[0].key, "evaluation");
        EXPECT_STREQ(e.args[1].key, "fire");
    }
    EXPECT_EQ(fires[0].args[0].value, 2);
    EXPECT_EQ(fires[0].args[1].value, 1);
    EXPECT_EQ(fires[1].args[0].value, 4);
    EXPECT_EQ(fires[1].args[1].value, 2);
}

/**
 * Replay parity with the collector hot: a fully traced chaos run
 * (every pipeline span + fault instants recorded) must reproduce
 * the untraced run bit for bit — scan results and per-site fault
 * counts alike. Guards against span emission consuming simulation
 * RNG or reordering work.
 */
TEST_F(ChaosTest, SpanEmissionDoesNotPerturbChaosReplay)
{
    const auto once = [](bool traced) {
        const SpanResetGuard guard;
        if (traced)
            spans::enableAll();
        faultInjector().reset(0xfee1);
        Server server(chaosServer(true));
        armFleetFaults();
        const ServerScan scan = server.run();
        std::vector<std::uint64_t> record{scan.freePages,
                                          scan.free2mBlocks};
        for (unsigned i = 0; i < numFaultSites; ++i) {
            const auto &s =
                faultInjector().siteStats(static_cast<FaultSite>(i));
            record.push_back(s.evaluations);
            record.push_back(s.fires);
        }
        if (traced) {
            EXPECT_GT(spans::collectedCount(), 0u)
                << "traced run collected no spans";
        }
        return record;
    };
    EXPECT_EQ(once(false), once(true));
}

} // namespace
} // namespace ctg
