/**
 * @file
 * alloc_contig_range tests: gigantic allocation by evacuation, the
 * single-unmovable-page blocking property (the paper's headline
 * fragility), free-space guards, and the HugeTLB kernel path.
 */

#include <gtest/gtest.h>

#include "base/units.hh"
#include "contiguitas/policy.hh"
#include "kernel/addrspace.hh"
#include "kernel/contig_alloc.hh"
#include "workloads/fragmenter.hh"

namespace ctg
{
namespace
{

KernelConfig
bigConfig()
{
    KernelConfig config;
    config.memBytes = 3_GiB;
    config.kernelTextBytes = 4_MiB;
    return config;
}

TEST(ContigAlloc, TrivialOnEmptyMemory)
{
    Kernel kernel(bigConfig());
    ContigAllocStats stats;
    const Pfn head = allocContigRange(
        kernel.policy().movableAllocator(), kernel.owners(),
        gigaOrder, MigrateType::Movable, AllocSource::User, 0,
        &stats);
    ASSERT_NE(head, invalidPfn);
    EXPECT_EQ(head % pagesPerGiga, 0u);
    kernel.freePages(head);
}

TEST(ContigAlloc, EvacuatesMovablePages)
{
    Kernel kernel(bigConfig());
    AddressSpace space(kernel, 1);
    // Occupy all of memory, then punch scattered holes: every
    // candidate window keeps resident pages, so the allocation must
    // evacuate.
    const Addr base = space.mmap(2816_MiB);
    space.touchRange(base, 2816_MiB);
    space.releasePages((1280_MiB) / pageBytes, kernel.rng());
    const PhysMem &mem = kernel.mem();
    const BuddyAllocator &movable =
        kernel.policy().movableAllocator();
    const Pfn first = (movable.startPfn() + pagesPerGiga - 1) &
                      ~(pagesPerGiga - 1);
    for (Pfn b = first; b + pagesPerGiga <= movable.endPfn();
         b += pagesPerGiga) {
        std::uint64_t used = 0;
        for (Pfn p = b; p < b + pagesPerGiga; ++p)
            used += !mem.frame(p).isFree();
        ASSERT_GT(used, 0u) << "window " << (b >> gigaOrder);
    }

    ContigAllocStats stats;
    const Pfn head = allocContigRange(
        kernel.policy().movableAllocator(), kernel.owners(),
        gigaOrder, MigrateType::Movable, AllocSource::User, 0,
        &stats);
    ASSERT_NE(head, invalidPfn);
    EXPECT_GT(stats.evacuations, 0u);
    // The evacuated mappings must still translate.
    const Translation t = space.translate(base);
    EXPECT_TRUE(t.valid);
    kernel.freePages(head);
}

TEST(ContigAlloc, ScatteredUnmovablePagesBlockEverything)
{
    // The Fragmenter strews a couple percent of unmovable pages
    // across essentially every 2MB block — a fortiori every 1GB
    // window — so "a single unmovable 4KB page renders a 1GB region
    // unmovable" applies machine-wide (Section 1).
    Kernel kernel(bigConfig());
    Fragmenter fragmenter(kernel, {}, 11);
    fragmenter.run();

    ContigAllocStats stats;
    const Pfn head = allocContigRange(
        kernel.policy().movableAllocator(), kernel.owners(),
        gigaOrder, MigrateType::Movable, AllocSource::User, 0,
        &stats);
    EXPECT_EQ(head, invalidPfn);
    EXPECT_EQ(stats.candidatesBlocked, stats.candidatesScanned);
    EXPECT_GT(stats.candidatesScanned, 0u);
}

TEST(ContigAlloc, KernelHugeTlbPathReclaimsAndSucceeds)
{
    Kernel kernel(bigConfig());
    AddressSpace space(kernel, 1);
    const Addr base = space.mmap(1_GiB);
    space.touchRange(base, 1_GiB);
    const Pfn head = kernel.allocGigantic(0);
    ASSERT_NE(head, invalidPfn);
    kernel.freePages(head);
}

TEST(ContigAlloc, ContiguitasMovableRegionAlwaysEligible)
{
    KernelConfig kc = bigConfig();
    ContiguitasConfig cc;
    cc.region.initialUnmovablePages = (128_MiB) / pageBytes;
    cc.region.minUnmovablePages = (32_MiB) / pageBytes;
    Kernel kernel(kc, ContiguitasPolicy::factory(cc));

    // Lots of unmovable churn, all confined.
    std::vector<Pfn> kernel_pages;
    for (int i = 0; i < 4000; ++i) {
        AllocRequest req;
        req.order = 0;
        req.mt = MigrateType::Unmovable;
        req.source = AllocSource::Slab;
        kernel_pages.push_back(kernel.allocPages(req));
    }
    AddressSpace space(kernel, 1);
    const Addr base = space.mmap(1200_MiB);
    space.touchRange(base, 1200_MiB);

    const Pfn head = kernel.allocGigantic(0);
    EXPECT_NE(head, invalidPfn);
}

} // namespace
} // namespace ctg
