/**
 * @file
 * ContigIndex exactness properties: after ANY sequence of allocator
 * operations, every index counter must equal a fresh full scan of
 * the frame array (scan::reference), and the MemStats index read
 * path must be bit-identical to the reference read path — including
 * every double-valued metric (DESIGN.md §11).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "base/rng.hh"
#include "base/units.hh"
#include "fleet/fleet.hh"
#include "mem/buddy.hh"
#include "mem/contig_index.hh"
#include "mem/mem_stats.hh"
#include "mem/scanner.hh"

namespace ctg
{
namespace
{

/** Orders checked against the reference scanner (order1G included:
 * trivially zero blocks on small rigs, exercised on the 1 GiB rig).
 */
constexpr unsigned checkOrders[] = {1, scan::order2M, scan::order4M,
                                    scan::order32M, scan::order1G};

/** Frame-walk ground truth independent of both the index and the
 * reference scanner's own arithmetic. */
struct WalkCounts
{
    std::uint64_t free = 0;
    std::uint64_t unmovable = 0;
    std::uint64_t pinned = 0;
};

WalkCounts
walkFrames(const PhysMem &mem)
{
    WalkCounts counts;
    for (Pfn p = 0; p < mem.numFrames(); ++p) {
        const auto f = mem.frame(p);
        counts.free += f.isFree();
        counts.unmovable += f.isUnmovableAllocation();
        counts.pinned += !f.isFree() && f.isPinned();
    }
    return counts;
}

/** Every index counter and every MemStats index read must equal the
 * reference scan of the current frame array — exactly. */
void
expectIndexExact(const PhysMem &mem, Rng &rng)
{
    ASSERT_TRUE(mem.contigIndexReads());
    const ContigIndex &idx = mem.contigIndex();
    const Pfn n = mem.numFrames();

    const WalkCounts truth = walkFrames(mem);
    EXPECT_EQ(idx.freePages(), truth.free);
    EXPECT_EQ(idx.unmovablePages(), truth.unmovable);
    EXPECT_EQ(idx.pinnedPages(), truth.pinned);
    EXPECT_EQ(idx.freePages(), scan::reference::freePages(mem, 0, n));
    EXPECT_EQ(idx.unmovableBySource(),
              scan::reference::unmovableBySource(mem, 0, n));

    for (const unsigned order : checkOrders) {
        EXPECT_EQ(idx.fullyFreeBlocks(order),
                  scan::reference::freeAlignedBlocks(mem, 0, n, order))
            << "order " << order;
        EXPECT_EQ(
            idx.taintedBlocks(order),
            scan::reference::unmovableAlignedBlocks(mem, 0, n, order))
            << "order " << order;
    }

    // The double-valued metrics must be bit-identical, not just
    // close: the index path reproduces the reference arithmetic from
    // identical integer counts.
    const MemStats stats = mem.stats();
    EXPECT_EQ(stats.unmovablePageRatio(),
              scan::reference::unmovablePageRatio(mem, 0, n));
    EXPECT_EQ(stats.meanFreeShareOfUnmovableBlocks(),
              scan::reference::meanFreeShareOfUnmovableBlocks(mem, 0,
                                                              n));
    for (const unsigned order : checkOrders) {
        EXPECT_EQ(
            stats.freeContiguityFraction(order),
            scan::reference::freeContiguityFraction(mem, 0, n, order))
            << "order " << order;
        EXPECT_EQ(
            stats.unmovableBlockFraction(order),
            scan::reference::unmovableBlockFraction(mem, 0, n, order))
            << "order " << order;
        EXPECT_EQ(stats.potentialContiguityFraction(order),
                  scan::reference::potentialContiguityFraction(
                      mem, 0, n, order))
            << "order " << order;
    }

    // A random order-aligned subrange, through the range queries.
    const unsigned order =
        checkOrders[rng.below(std::size(checkOrders))];
    const Pfn span = Pfn{1} << order;
    if (n >= span) {
        const Pfn blocks = n >> order;
        const Pfn lo = rng.below(blocks) << order;
        const Pfn hi = (rng.range(lo >> order, blocks - 1) + 1)
                       << order;
        EXPECT_EQ(idx.freePagesIn(lo, hi),
                  scan::reference::freePages(mem, lo, hi));
        EXPECT_EQ(idx.fullyFreeBlocksIn(lo, hi, order),
                  scan::reference::freeAlignedBlocks(mem, lo, hi,
                                                     order));
        EXPECT_EQ(idx.taintedBlocksIn(lo, hi, order),
                  scan::reference::unmovableAlignedBlocks(mem, lo, hi,
                                                          order));
    }
}

/**
 * The descent queries (DESIGN.md §12) against a fresh linear
 * classification of the frame array: every hot-path building block
 * must agree with the walk it replaces.
 */
void
expectDescentQueriesExact(const PhysMem &mem, Rng &rng)
{
    const ContigIndex &idx = mem.contigIndex();
    const Pfn n = mem.numFrames();

    // Per-pageblock classification and the mixed-block enumeration.
    std::uint64_t mixed_blocks = 0;
    Pfn enumerated = idx.firstMixedBlock(0, n);
    for (Pfn block = 0; block < n; block += pagesPerHuge) {
        std::uint64_t free = 0, unmov = 0, pinned = 0;
        for (Pfn pfn = block; pfn < block + pagesPerHuge; ++pfn) {
            const auto f = mem.frame(pfn);
            free += f.isFree();
            unmov += f.isUnmovableAllocation();
            pinned += !f.isFree() && f.isPinned();
        }
        const std::uint64_t movable = pagesPerHuge - free - unmov;
        const ContigIndex::BlockClass cls = idx.blockClass(block);
        ASSERT_EQ(cls.free, free) << "block " << block;
        ASSERT_EQ(cls.unmovable, unmov) << "block " << block;
        ASSERT_EQ(cls.pinned, pinned) << "block " << block;
        ASSERT_EQ(cls.movableAlloc, movable) << "block " << block;
        if (free > 0 && movable > 0) {
            ++mixed_blocks;
            ASSERT_EQ(enumerated, block);
            enumerated = idx.nextMixedBlock(enumerated, n);
        }
    }
    ASSERT_EQ(enumerated, invalidPfn);
    EXPECT_EQ(idx.mixedBlocksIn(0, n), mixed_blocks);

    // First-frame queries on a random subrange, against linear
    // search with the same predicates.
    const Pfn lo = rng.below(n);
    const Pfn hi = rng.range(lo, n - 1) + 1;
    Pfn first_alloc = invalidPfn;
    Pfn first_unmov = invalidPfn;
    Pfn first_movmt = invalidPfn;
    std::uint64_t movmt_pages = 0;
    for (Pfn pfn = lo; pfn < hi; ++pfn) {
        const auto f = mem.frame(pfn);
        if (!f.isFree() && first_alloc == invalidPfn)
            first_alloc = pfn;
        if (f.isUnmovableAllocation() && first_unmov == invalidPfn)
            first_unmov = pfn;
        if (!f.isFree() && f.migrateType() == MigrateType::Movable) {
            if (first_movmt == invalidPfn)
                first_movmt = pfn;
            ++movmt_pages;
        }
    }
    EXPECT_EQ(idx.firstAllocatedFrame(lo, hi), first_alloc);
    EXPECT_EQ(idx.firstUnmovableFrame(lo, hi), first_unmov);
    EXPECT_EQ(idx.firstMovableMtFrame(lo, hi), first_movmt);
    EXPECT_EQ(idx.movableMtPagesIn(lo, hi), movmt_pages);

    // Fully-free span search, both address preferences, against a
    // linear scan over aligned candidates.
    for (const unsigned order : checkOrders) {
        const Pfn span = Pfn{1} << order;
        const Pfn a = (lo + span - 1) & ~(span - 1);
        const Pfn b = hi & ~(span - 1);
        Pfn lowest = invalidPfn;
        Pfn highest = invalidPfn;
        for (Pfn base = a; base + span <= b; base += span) {
            bool all_free = true;
            for (Pfn pfn = base; pfn < base + span; ++pfn) {
                if (!mem.frame(pfn).isFree()) {
                    all_free = false;
                    break;
                }
            }
            if (all_free) {
                if (lowest == invalidPfn)
                    lowest = base;
                highest = base;
            }
        }
        EXPECT_EQ(idx.firstFullyFreeSpan(order, lo, hi,
                                         AddrPref::None),
                  lowest)
            << "order " << order;
        EXPECT_EQ(idx.firstFullyFreeSpan(order, lo, hi, AddrPref::Low),
                  lowest)
            << "order " << order;
        EXPECT_EQ(idx.firstFullyFreeSpan(order, lo, hi,
                                         AddrPref::High),
                  highest)
            << "order " << order;
    }
}

MigrateType
randomMt(Rng &rng)
{
    switch (rng.below(3)) {
      case 0:
        return MigrateType::Movable;
      case 1:
        return MigrateType::Unmovable;
      default:
        return MigrateType::Reclaimable;
    }
}

AllocSource
randomSource(Rng &rng)
{
    return static_cast<AllocSource>(rng.below(numAllocSources));
}

TEST(ContigIndexProperty, RandomAllocFreePinSequencesStayExact)
{
    PhysMem mem(64_MiB);
    BuddyAllocator buddy(mem, 0, mem.numFrames(), "prop");
    Rng rng(0xc0117);

    struct Live
    {
        Pfn head;
        unsigned order;
        bool pinned;
    };
    std::vector<Live> live;

    for (int step = 0; step < 400; ++step) {
        const unsigned op = rng.below(100);
        if (op < 45) {
            const unsigned order = rng.below(5);
            const Pfn head = buddy.allocPages(order, randomMt(rng),
                                              randomSource(rng));
            if (head != invalidPfn)
                live.push_back({head, order, false});
        } else if (op < 75 && !live.empty()) {
            const std::size_t victim = rng.below(live.size());
            Live block = live[victim];
            live.erase(live.begin() + victim);
            if (block.pinned) {
                mem.setRangePinned(
                    block.head,
                    block.head + (Pfn{1} << block.order), false);
            }
            buddy.freePages(block.head);
        } else if (op < 90 && !live.empty()) {
            Live &block = live[rng.below(live.size())];
            block.pinned = !block.pinned;
            mem.setRangePinned(block.head,
                               block.head + (Pfn{1} << block.order),
                               block.pinned);
        } else if (!live.empty()) {
            const Live &block = live[rng.below(live.size())];
            mem.setBlockPinned(block.head, rng.chance(0.5));
            // Reflect the pin bit so the eventual free unpins it.
            Live &entry =
                *std::find_if(live.begin(), live.end(),
                              [&](const Live &l) {
                                  return l.head == block.head;
                              });
            entry.pinned = mem.frame(entry.head).isPinned();
        }
        if (step % 4 == 0)
            expectIndexExact(mem, rng);
        if (::testing::Test::HasFailure())
            FAIL() << "diverged at step " << step;
    }
    expectIndexExact(mem, rng);
}

TEST(ContigIndexProperty, GiganticAndRangeOpsStayExact)
{
    PhysMem mem(1_GiB);
    BuddyAllocator buddy(mem, 0, mem.numFrames(), "giga");
    Rng rng(0x916a);

    // Fragment a little first so gigantic allocation has to work.
    std::vector<Pfn> singles;
    for (int i = 0; i < 200; ++i) {
        const Pfn p = buddy.allocPages(rng.below(4), randomMt(rng),
                                       randomSource(rng));
        if (p != invalidPfn)
            singles.push_back(p);
    }
    expectIndexExact(mem, rng);

    const Pfn giant =
        buddy.allocGigantic(MigrateType::Unmovable, AllocSource::User);
    if (giant != invalidPfn)
        expectIndexExact(mem, rng);

    // Region-resize style ops: isolate, detach, re-attach a 32 MB
    // aligned window at the top of memory.
    const Pfn span = Pfn{1} << scan::order32M;
    const Pfn lo = mem.numFrames() - span;
    const Pfn hi = mem.numFrames();
    if (buddy.rangeFullyFree(lo, hi)) {
        buddy.isolateRange(lo, hi);
        expectIndexExact(mem, rng);
        buddy.detachRange(lo, hi);
        expectIndexExact(mem, rng);
        buddy.attachRange(lo, hi, MigrateType::Movable);
        expectIndexExact(mem, rng);
    }

    if (giant != invalidPfn) {
        buddy.freePages(giant);
        expectIndexExact(mem, rng);
    }
    for (const Pfn p : singles)
        buddy.freePages(p);
    expectIndexExact(mem, rng);
    EXPECT_EQ(mem.contigIndex().freePages(), mem.numFrames());
}

TEST(ContigIndexProperty, DescentQueriesMatchLinearClassification)
{
    PhysMem mem(64_MiB);
    BuddyAllocator buddy(mem, 0, mem.numFrames(), "descent");
    Rng rng(0xdec3);

    struct Live
    {
        Pfn head;
        unsigned order;
        bool pinned;
    };
    std::vector<Live> live;

    for (int step = 0; step < 300; ++step) {
        const unsigned op = rng.below(100);
        if (op < 50) {
            const unsigned order = rng.below(6);
            const Pfn head = buddy.allocPages(order, randomMt(rng),
                                              randomSource(rng));
            if (head != invalidPfn)
                live.push_back({head, order, false});
        } else if (op < 80 && !live.empty()) {
            const std::size_t victim = rng.below(live.size());
            Live block = live[victim];
            live.erase(live.begin() + victim);
            if (block.pinned) {
                mem.setRangePinned(
                    block.head,
                    block.head + (Pfn{1} << block.order), false);
            }
            buddy.freePages(block.head);
        } else if (!live.empty()) {
            Live &block = live[rng.below(live.size())];
            block.pinned = !block.pinned;
            mem.setRangePinned(block.head,
                               block.head + (Pfn{1} << block.order),
                               block.pinned);
        }
        if (step % 10 == 0)
            expectDescentQueriesExact(mem, rng);
        if (::testing::Test::HasFailure())
            FAIL() << "diverged at step " << step;
    }
    expectDescentQueriesExact(mem, rng);
}

/** Exact index-backed AddrPref placement must pick the same block an
 * uncapped free-list scan would: both select the extreme-address
 * entry of the (mt, order) list, so two machines driven by the same
 * operation sequence stay bit-identical. */
TEST(ContigIndexProperty, ExactPrefMatchesUncappedScan)
{
    PhysMem exact_mem(64_MiB);
    PhysMem scan_mem(64_MiB);
    BuddyAllocator exact_buddy(exact_mem, 0, exact_mem.numFrames(),
                               "exact");
    BuddyAllocator scan_buddy(scan_mem, 0, scan_mem.numFrames(),
                              "scan");
    exact_mem.setExactAddrPref(true);
    // An effectively unbounded scan cap examines every list entry,
    // so the capped scan also finds the true extreme.
    scan_buddy.setPrefScanCap(1u << 30);

    Rng rng(0xeac7);
    std::vector<std::pair<Pfn, Pfn>> live; // exact head, scan head
    for (int step = 0; step < 600; ++step) {
        if (rng.below(100) < 60 || live.empty()) {
            const unsigned order = rng.below(6);
            const MigrateType mt = randomMt(rng);
            const AllocSource src = randomSource(rng);
            const AddrPref pref =
                rng.below(2) ? AddrPref::Low : AddrPref::High;
            const Pfn a = exact_buddy.allocPages(order, mt, src, 0,
                                                 pref);
            const Pfn b = scan_buddy.allocPages(order, mt, src, 0,
                                                pref);
            ASSERT_EQ(a, b) << "step " << step;
            if (a != invalidPfn)
                live.push_back({a, b});
        } else {
            const std::size_t victim = rng.below(live.size());
            const auto [a, b] = live[victim];
            live.erase(live.begin() + victim);
            ASSERT_EQ(a, b);
            exact_buddy.freePages(a);
            scan_buddy.freePages(b);
        }
    }
    EXPECT_EQ(exact_mem.contigIndex().freePages(),
              scan_mem.contigIndex().freePages());
}

/** The read-path toggle must not change a single bit of any fleet
 * study output, at any thread count (fig04/05/11/12 all consume
 * ServerScan). */
TEST(ContigIndexProperty, FleetScansBitIdenticalIndexOnVsOff)
{
    const auto runFleet = [](bool index_reads, unsigned threads) {
        Fleet::Config config;
        config.servers = 8;
        config.memBytes = std::uint64_t{512} << 20;
        config.minUptimeSec = 4.0;
        config.maxUptimeSec = 10.0;
        config.prefragmentFrac = 0.25;
        config.seed = 0xb17;
        config.threads = threads;
        config.contigIndexReads = index_reads;
        Fleet fleet(config);
        return fleet.run();
    };

    const std::vector<ServerScan> baseline = runFleet(true, 1);
    for (const unsigned threads : {1u, 4u, 8u}) {
        for (const bool index_reads : {true, false}) {
            const std::vector<ServerScan> scans =
                runFleet(index_reads, threads);
            ASSERT_EQ(scans.size(), baseline.size());
            for (std::size_t i = 0; i < scans.size(); ++i) {
                EXPECT_EQ(std::memcmp(&scans[i], &baseline[i],
                                      sizeof(ServerScan)),
                          0)
                    << "server " << i << " threads " << threads
                    << " index " << index_reads;
            }
        }
    }
}

/** Same contract with Contiguitas enabled, which drives the
 * index-rewritten region-resize, defrag, and contig-alloc hot paths
 * on every server (DESIGN.md §12). */
TEST(ContigIndexProperty, ContiguitasFleetBitIdenticalIndexOnVsOff)
{
    const auto runFleet = [](bool index_reads, unsigned threads) {
        Fleet::Config config;
        config.servers = 6;
        config.memBytes = std::uint64_t{512} << 20;
        config.policy.name = "contiguitas";
        config.minUptimeSec = 4.0;
        config.maxUptimeSec = 10.0;
        config.prefragmentFrac = 0.25;
        config.seed = 0xc716;
        config.threads = threads;
        config.contigIndexReads = index_reads;
        Fleet fleet(config);
        return fleet.run();
    };

    const std::vector<ServerScan> baseline = runFleet(true, 1);
    for (const unsigned threads : {1u, 4u, 8u}) {
        for (const bool index_reads : {true, false}) {
            const std::vector<ServerScan> scans =
                runFleet(index_reads, threads);
            ASSERT_EQ(scans.size(), baseline.size());
            for (std::size_t i = 0; i < scans.size(); ++i) {
                EXPECT_EQ(std::memcmp(&scans[i], &baseline[i],
                                      sizeof(ServerScan)),
                          0)
                    << "server " << i << " threads " << threads
                    << " index " << index_reads;
            }
        }
    }
}

} // namespace
} // namespace ctg
