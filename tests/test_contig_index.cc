/**
 * @file
 * ContigIndex exactness properties: after ANY sequence of allocator
 * operations, every index counter must equal a fresh full scan of
 * the frame array (scan::reference), and the MemStats index read
 * path must be bit-identical to the reference read path — including
 * every double-valued metric (DESIGN.md §11).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "base/rng.hh"
#include "base/units.hh"
#include "fleet/fleet.hh"
#include "mem/buddy.hh"
#include "mem/contig_index.hh"
#include "mem/mem_stats.hh"
#include "mem/scanner.hh"

namespace ctg
{
namespace
{

/** Orders checked against the reference scanner (order1G included:
 * trivially zero blocks on small rigs, exercised on the 1 GiB rig).
 */
constexpr unsigned checkOrders[] = {1, scan::order2M, scan::order4M,
                                    scan::order32M, scan::order1G};

/** Frame-walk ground truth independent of both the index and the
 * reference scanner's own arithmetic. */
struct WalkCounts
{
    std::uint64_t free = 0;
    std::uint64_t unmovable = 0;
    std::uint64_t pinned = 0;
};

WalkCounts
walkFrames(const PhysMem &mem)
{
    WalkCounts counts;
    for (Pfn p = 0; p < mem.numFrames(); ++p) {
        const PageFrame &f = mem.frame(p);
        counts.free += f.isFree();
        counts.unmovable += f.isUnmovableAllocation();
        counts.pinned += !f.isFree() && f.isPinned();
    }
    return counts;
}

/** Every index counter and every MemStats index read must equal the
 * reference scan of the current frame array — exactly. */
void
expectIndexExact(const PhysMem &mem, Rng &rng)
{
    ASSERT_TRUE(mem.contigIndexReads());
    const ContigIndex &idx = mem.contigIndex();
    const Pfn n = mem.numFrames();

    const WalkCounts truth = walkFrames(mem);
    EXPECT_EQ(idx.freePages(), truth.free);
    EXPECT_EQ(idx.unmovablePages(), truth.unmovable);
    EXPECT_EQ(idx.pinnedPages(), truth.pinned);
    EXPECT_EQ(idx.freePages(), scan::reference::freePages(mem, 0, n));
    EXPECT_EQ(idx.unmovableBySource(),
              scan::reference::unmovableBySource(mem, 0, n));

    for (const unsigned order : checkOrders) {
        EXPECT_EQ(idx.fullyFreeBlocks(order),
                  scan::reference::freeAlignedBlocks(mem, 0, n, order))
            << "order " << order;
        EXPECT_EQ(
            idx.taintedBlocks(order),
            scan::reference::unmovableAlignedBlocks(mem, 0, n, order))
            << "order " << order;
    }

    // The double-valued metrics must be bit-identical, not just
    // close: the index path reproduces the reference arithmetic from
    // identical integer counts.
    const MemStats stats = mem.stats();
    EXPECT_EQ(stats.unmovablePageRatio(),
              scan::reference::unmovablePageRatio(mem, 0, n));
    EXPECT_EQ(stats.meanFreeShareOfUnmovableBlocks(),
              scan::reference::meanFreeShareOfUnmovableBlocks(mem, 0,
                                                              n));
    for (const unsigned order : checkOrders) {
        EXPECT_EQ(
            stats.freeContiguityFraction(order),
            scan::reference::freeContiguityFraction(mem, 0, n, order))
            << "order " << order;
        EXPECT_EQ(
            stats.unmovableBlockFraction(order),
            scan::reference::unmovableBlockFraction(mem, 0, n, order))
            << "order " << order;
        EXPECT_EQ(stats.potentialContiguityFraction(order),
                  scan::reference::potentialContiguityFraction(
                      mem, 0, n, order))
            << "order " << order;
    }

    // A random order-aligned subrange, through the range queries.
    const unsigned order =
        checkOrders[rng.below(std::size(checkOrders))];
    const Pfn span = Pfn{1} << order;
    if (n >= span) {
        const Pfn blocks = n >> order;
        const Pfn lo = rng.below(blocks) << order;
        const Pfn hi = (rng.range(lo >> order, blocks - 1) + 1)
                       << order;
        EXPECT_EQ(idx.freePagesIn(lo, hi),
                  scan::reference::freePages(mem, lo, hi));
        EXPECT_EQ(idx.fullyFreeBlocksIn(lo, hi, order),
                  scan::reference::freeAlignedBlocks(mem, lo, hi,
                                                     order));
        EXPECT_EQ(idx.taintedBlocksIn(lo, hi, order),
                  scan::reference::unmovableAlignedBlocks(mem, lo, hi,
                                                          order));
    }
}

MigrateType
randomMt(Rng &rng)
{
    switch (rng.below(3)) {
      case 0:
        return MigrateType::Movable;
      case 1:
        return MigrateType::Unmovable;
      default:
        return MigrateType::Reclaimable;
    }
}

AllocSource
randomSource(Rng &rng)
{
    return static_cast<AllocSource>(rng.below(numAllocSources));
}

TEST(ContigIndexProperty, RandomAllocFreePinSequencesStayExact)
{
    PhysMem mem(64_MiB);
    BuddyAllocator buddy(mem, 0, mem.numFrames(), "prop");
    Rng rng(0xc0117);

    struct Live
    {
        Pfn head;
        unsigned order;
        bool pinned;
    };
    std::vector<Live> live;

    for (int step = 0; step < 400; ++step) {
        const unsigned op = rng.below(100);
        if (op < 45) {
            const unsigned order = rng.below(5);
            const Pfn head = buddy.allocPages(order, randomMt(rng),
                                              randomSource(rng));
            if (head != invalidPfn)
                live.push_back({head, order, false});
        } else if (op < 75 && !live.empty()) {
            const std::size_t victim = rng.below(live.size());
            Live block = live[victim];
            live.erase(live.begin() + victim);
            if (block.pinned) {
                mem.setRangePinned(
                    block.head,
                    block.head + (Pfn{1} << block.order), false);
            }
            buddy.freePages(block.head);
        } else if (op < 90 && !live.empty()) {
            Live &block = live[rng.below(live.size())];
            block.pinned = !block.pinned;
            mem.setRangePinned(block.head,
                               block.head + (Pfn{1} << block.order),
                               block.pinned);
        } else if (!live.empty()) {
            const Live &block = live[rng.below(live.size())];
            mem.setBlockPinned(block.head, rng.chance(0.5));
            // Reflect the pin bit so the eventual free unpins it.
            Live &entry =
                *std::find_if(live.begin(), live.end(),
                              [&](const Live &l) {
                                  return l.head == block.head;
                              });
            entry.pinned = mem.frame(entry.head).isPinned();
        }
        if (step % 4 == 0)
            expectIndexExact(mem, rng);
        if (::testing::Test::HasFailure())
            FAIL() << "diverged at step " << step;
    }
    expectIndexExact(mem, rng);
}

TEST(ContigIndexProperty, GiganticAndRangeOpsStayExact)
{
    PhysMem mem(1_GiB);
    BuddyAllocator buddy(mem, 0, mem.numFrames(), "giga");
    Rng rng(0x916a);

    // Fragment a little first so gigantic allocation has to work.
    std::vector<Pfn> singles;
    for (int i = 0; i < 200; ++i) {
        const Pfn p = buddy.allocPages(rng.below(4), randomMt(rng),
                                       randomSource(rng));
        if (p != invalidPfn)
            singles.push_back(p);
    }
    expectIndexExact(mem, rng);

    const Pfn giant =
        buddy.allocGigantic(MigrateType::Unmovable, AllocSource::User);
    if (giant != invalidPfn)
        expectIndexExact(mem, rng);

    // Region-resize style ops: isolate, detach, re-attach a 32 MB
    // aligned window at the top of memory.
    const Pfn span = Pfn{1} << scan::order32M;
    const Pfn lo = mem.numFrames() - span;
    const Pfn hi = mem.numFrames();
    if (buddy.rangeFullyFree(lo, hi)) {
        buddy.isolateRange(lo, hi);
        expectIndexExact(mem, rng);
        buddy.detachRange(lo, hi);
        expectIndexExact(mem, rng);
        buddy.attachRange(lo, hi, MigrateType::Movable);
        expectIndexExact(mem, rng);
    }

    if (giant != invalidPfn) {
        buddy.freePages(giant);
        expectIndexExact(mem, rng);
    }
    for (const Pfn p : singles)
        buddy.freePages(p);
    expectIndexExact(mem, rng);
    EXPECT_EQ(mem.contigIndex().freePages(), mem.numFrames());
}

/** The read-path toggle must not change a single bit of any fleet
 * study output, at any thread count (fig04/05/11/12 all consume
 * ServerScan). */
TEST(ContigIndexProperty, FleetScansBitIdenticalIndexOnVsOff)
{
    const auto runFleet = [](bool index_reads, unsigned threads) {
        Fleet::Config config;
        config.servers = 8;
        config.memBytes = std::uint64_t{512} << 20;
        config.minUptimeSec = 4.0;
        config.maxUptimeSec = 10.0;
        config.prefragmentFrac = 0.25;
        config.seed = 0xb17;
        config.threads = threads;
        config.contigIndexReads = index_reads;
        Fleet fleet(config);
        return fleet.run();
    };

    const std::vector<ServerScan> baseline = runFleet(true, 1);
    for (const unsigned threads : {1u, 4u, 8u}) {
        for (const bool index_reads : {true, false}) {
            const std::vector<ServerScan> scans =
                runFleet(index_reads, threads);
            ASSERT_EQ(scans.size(), baseline.size());
            for (std::size_t i = 0; i < scans.size(); ++i) {
                EXPECT_EQ(std::memcmp(&scans[i], &baseline[i],
                                      sizeof(ServerScan)),
                          0)
                    << "server " << i << " threads " << threads
                    << " index " << index_reads;
            }
        }
    }
}

} // namespace
} // namespace ctg
