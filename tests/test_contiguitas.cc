/**
 * @file
 * Contiguitas core tests: confinement, Algorithm 1 resizing
 * decisions, region expansion/shrinking with evacuation, pin
 * migration, and the hardware-migration hook.
 */

#include <gtest/gtest.h>

#include "base/units.hh"
#include "contiguitas/policy.hh"
#include "contiguitas/region_manager.hh"
#include "contiguitas/resize_controller.hh"
#include "kernel/addrspace.hh"
#include "kernel/netstack.hh"
#include "kernel/slab.hh"
#include "mem/mem_stats.hh"
#include "mem/scanner.hh"

namespace ctg
{
namespace
{

KernelConfig
smallConfig()
{
    KernelConfig config;
    config.memBytes = 512_MiB;
    config.kernelTextBytes = 8_MiB;
    return config;
}

ContiguitasConfig
smallContiguitas()
{
    ContiguitasConfig config;
    config.region.initialUnmovablePages = (64_MiB) / pageBytes;
    config.region.minUnmovablePages = (16_MiB) / pageBytes;
    config.tuning.stepPages = (8_MiB) / pageBytes;
    return config;
}

TEST(ResizeController, ExpandsOnUnmovablePressure)
{
    ResizeController ctrl{ResizeParams{}};
    const ResizeDecision d = ctrl.evaluate(/*unmov=*/20.0,
                                           /*mov=*/0.5, 10000);
    EXPECT_EQ(d.direction, ResizeDirection::Expand);
    EXPECT_GT(d.targetPages, 10000u);
}

TEST(ResizeController, ShrinksWhenMovablePressureHigh)
{
    ResizeController ctrl{ResizeParams{}};
    const ResizeDecision d = ctrl.evaluate(/*unmov=*/1.0,
                                           /*mov=*/30.0, 10000);
    EXPECT_EQ(d.direction, ResizeDirection::Shrink);
    EXPECT_LT(d.targetPages, 10000u);
}

TEST(ResizeController, BothPressuresHighShrinks)
{
    // Algorithm 1: the expand branch requires movable pressure to be
    // *below* its threshold; contention resolves toward shrink.
    ResizeController ctrl{ResizeParams{}};
    const ResizeDecision d = ctrl.evaluate(20.0, 20.0, 10000);
    EXPECT_EQ(d.direction, ResizeDirection::Shrink);
}

TEST(ResizeController, FactorGrowsWithPressure)
{
    ResizeController ctrl{ResizeParams{}};
    const ResizeDecision mild = ctrl.evaluate(6.0, 0.0, 100000);
    const ResizeDecision severe = ctrl.evaluate(60.0, 0.0, 100000);
    EXPECT_EQ(mild.direction, ResizeDirection::Expand);
    EXPECT_EQ(severe.direction, ResizeDirection::Expand);
    EXPECT_GT(severe.factor, mild.factor);
    EXPECT_GT(severe.targetPages, mild.targetPages);
}

TEST(ResizeController, FactorIsClamped)
{
    ResizeParams params;
    params.maxFactor = 0.5;
    ResizeController ctrl{params};
    const ResizeDecision d = ctrl.evaluate(1000.0, 0.0, 1000);
    EXPECT_LE(d.factor, 0.5);
    EXPECT_LE(d.targetPages, 1500u);
}

class RegionManagerTest : public ::testing::Test
{
  protected:
    RegionManagerTest()
        : mem(256_MiB)
    {
        RegionManager::Config config;
        config.initialUnmovablePages = (32_MiB) / pageBytes;
        config.minUnmovablePages = (8_MiB) / pageBytes;
        regions = std::make_unique<RegionManager>(mem, owners, config);
    }

    PhysMem mem;
    OwnerRegistry owners;
    std::unique_ptr<RegionManager> regions;
};

TEST_F(RegionManagerTest, InitialLayout)
{
    EXPECT_EQ(regions->boundary(), (32_MiB) / pageBytes);
    EXPECT_EQ(regions->unmovable().totalPages() +
                  regions->movable().totalPages(),
              mem.numFrames());
    regions->checkConfinement();
}

TEST_F(RegionManagerTest, ExpandTakesFromMovable)
{
    const Pfn before = regions->boundary();
    const std::uint64_t added =
        regions->expandUnmovable((16_MiB) / pageBytes);
    EXPECT_EQ(added, (16_MiB) / pageBytes);
    EXPECT_EQ(regions->boundary(), before + added);
    regions->unmovable().checkInvariants();
    regions->movable().checkInvariants();
    regions->checkConfinement();
}

TEST_F(RegionManagerTest, ExpandEvacuatesMovablePages)
{
    // Fill the area just above the boundary with movable pages that
    // have no registered owner -> they cannot be migrated, so the
    // expansion must fail...
    std::vector<Pfn> held;
    for (int i = 0; i < 4096; ++i) {
        held.push_back(regions->movable().allocPages(
            0, MigrateType::Movable, AllocSource::User, 0,
            AddrPref::Low));
    }
    EXPECT_EQ(regions->expandUnmovable((8_MiB) / pageBytes), 0u);

    // ...but after freeing them the same expansion succeeds.
    for (const Pfn p : held)
        regions->movable().freePages(p);
    EXPECT_GT(regions->expandUnmovable((8_MiB) / pageBytes), 0u);
    regions->checkConfinement();
}

TEST_F(RegionManagerTest, ShrinkReturnsFreeSpace)
{
    const Pfn before = regions->boundary();
    const std::uint64_t removed =
        regions->shrinkUnmovable((8_MiB) / pageBytes);
    EXPECT_EQ(removed, (8_MiB) / pageBytes);
    EXPECT_EQ(regions->boundary(), before - removed);
    regions->checkConfinement();
}

/** A stand-in for a device driver whose buffer translations the
 * IOMMU (and thus Contiguitas-HW) can repoint. */
class DummyIoOwner : public PageOwnerClient
{
  public:
    Pfn current = invalidPfn;

    bool
    relocate(std::uint64_t, Pfn old_head, Pfn new_head) override
    {
        if (current != old_head)
            return false;
        current = new_head;
        return true;
    }
};

TEST_F(RegionManagerTest, ShrinkBlockedByBusyIoPageAtBorder)
{
    // An IO buffer right at the border: busy for DMA (pinned), so
    // software migration is impossible...
    DummyIoOwner io;
    const std::uint16_t cid = owners.registerClient(&io);
    const Pfn page = regions->unmovable().allocPages(
        0, MigrateType::Unmovable, AllocSource::Networking,
        OwnerRegistry::makeOwner(cid, 1), AddrPref::High);
    ASSERT_NE(page, invalidPfn);
    io.current = page;
    mem.setRangePinned(page, page + 1, true);
    EXPECT_EQ(regions->shrinkUnmovable((8_MiB) / pageBytes), 0u);
    EXPECT_GT(regions->stats().shrinkFailures, 0u);

    // ...but Contiguitas-HW migrates it while the device keeps
    // using it, and the shrink goes through.
    regions->enableHwMigration();
    EXPECT_GT(regions->shrinkUnmovable((8_MiB) / pageBytes), 0u);
    EXPECT_GT(regions->stats().hwMigrations, 0u);
    EXPECT_NE(io.current, page); // the driver's record followed
    EXPECT_TRUE(mem.frame(io.current).isPinned());
    regions->checkConfinement();
}

TEST_F(RegionManagerTest, ShrinkBlockedByLinearMapPageEvenWithHw)
{
    // A slab page has raw linear-map pointers into it: nothing can
    // move it, hardware or not (the paper's type-1 unmovable).
    const Pfn page = regions->unmovable().allocPages(
        0, MigrateType::Unmovable, AllocSource::Slab, 0,
        AddrPref::High);
    ASSERT_NE(page, invalidPfn);
    regions->enableHwMigration();
    EXPECT_EQ(regions->shrinkUnmovable((8_MiB) / pageBytes), 0u);
    regions->unmovable().freePages(page);
}

TEST_F(RegionManagerTest, ShrinkRespectsMinimum)
{
    // Try to shrink far below the minimum region size.
    const std::uint64_t huge_request = regions->boundary();
    EXPECT_EQ(regions->shrinkUnmovable(huge_request), 0u);
}

TEST_F(RegionManagerTest, HwHookReceivesMigrations)
{
    std::uint64_t hook_calls = 0;
    regions->enableHwMigration(
        [&hook_calls](Pfn, Pfn, unsigned) { ++hook_calls; });
    DummyIoOwner io;
    const std::uint16_t cid = owners.registerClient(&io);
    const Pfn page = regions->unmovable().allocPages(
        0, MigrateType::Unmovable, AllocSource::Networking,
        OwnerRegistry::makeOwner(cid, 1), AddrPref::High);
    ASSERT_NE(page, invalidPfn);
    io.current = page;
    mem.setRangePinned(page, page + 1, true);
    ASSERT_GT(regions->shrinkUnmovable((8_MiB) / pageBytes), 0u);
    EXPECT_EQ(hook_calls, regions->stats().hwMigrations);
    EXPECT_GT(hook_calls, 0u);
}

class ContiguitasPolicyTest : public ::testing::Test
{
  protected:
    ContiguitasPolicyTest()
        : kernel(smallConfig(),
                 ContiguitasPolicy::factory(smallContiguitas())),
          policy(static_cast<ContiguitasPolicy &>(kernel.policy()))
    {}

    Kernel kernel;
    ContiguitasPolicy &policy;
};

TEST_F(ContiguitasPolicyTest, KernelAllocationsConfined)
{
    for (int i = 0; i < 512; ++i) {
        AllocRequest req;
        req.order = 0;
        req.mt = MigrateType::Unmovable;
        req.source = AllocSource::Slab;
        const Pfn p = kernel.allocPages(req);
        ASSERT_NE(p, invalidPfn);
        EXPECT_LT(p, policy.regions().boundary());
    }
    policy.regions().checkConfinement();
}

TEST_F(ContiguitasPolicyTest, UserAllocationsStayAboveBoundary)
{
    for (int i = 0; i < 512; ++i) {
        AllocRequest req;
        req.order = 0;
        req.mt = MigrateType::Movable;
        req.source = AllocSource::User;
        const Pfn p = kernel.allocPages(req);
        ASSERT_NE(p, invalidPfn);
        EXPECT_GE(p, policy.regions().boundary());
    }
}

TEST_F(ContiguitasPolicyTest, RegionFullTriggersUrgentExpansion)
{
    const Pfn before = policy.regions().boundary();
    // Fill the unmovable region far beyond its initial size.
    const std::uint64_t initial = before;
    std::uint64_t allocated = 0;
    while (allocated < initial * 2) {
        AllocRequest req;
        req.order = maxOrder;
        req.mt = MigrateType::Unmovable;
        req.source = AllocSource::Networking;
        const Pfn p = kernel.allocPages(req);
        ASSERT_NE(p, invalidPfn);
        allocated += Pfn{1} << maxOrder;
    }
    EXPECT_GT(policy.regions().boundary(), before);
    EXPECT_GT(policy.stats().urgentExpansions, 0u);
    policy.regions().checkConfinement();
}

TEST_F(ContiguitasPolicyTest, PinMigratesIntoUnmovableRegion)
{
    AddressSpace space(kernel, 1);
    // Sub-huge region so backing uses 4 KB pages.
    const Addr base = space.mmap(64_KiB);
    space.touchRange(base, 64_KiB);

    const Pfn frame = space.randomBacked4kFrame(kernel.rng());
    ASSERT_NE(frame, invalidPfn);
    ASSERT_GE(frame, policy.regions().boundary());

    const Pfn pinned = kernel.pinPages(frame);
    ASSERT_NE(pinned, invalidPfn);
    EXPECT_NE(pinned, frame);
    EXPECT_LT(pinned, policy.regions().boundary());
    EXPECT_TRUE(kernel.mem().frame(pinned).isPinned());
    // The address space mapping followed the migration.
    policy.regions().checkConfinement();

    kernel.unpinPages(pinned);
    EXPECT_FALSE(kernel.mem().frame(pinned).isPinned());
}

TEST_F(ContiguitasPolicyTest, PinnedPageTranslationStaysValid)
{
    AddressSpace space(kernel, 1);
    const Addr base = space.mmap(1_MiB);
    space.touchRange(base, 1_MiB);
    const Translation before = space.translate(base);
    ASSERT_TRUE(before.valid);

    const Pfn pinned = kernel.pinPages(before.pfn);
    ASSERT_NE(pinned, invalidPfn);
    const Translation after = space.translate(base);
    ASSERT_TRUE(after.valid);
    EXPECT_EQ(after.pfn, pinned);
}

TEST_F(ContiguitasPolicyTest, ControllerExpandsUnderPressure)
{
    // Synthesize sustained unmovable pressure.
    const Pfn before = policy.regions().boundary();
    for (int second = 1; second <= 10; ++second) {
        kernel.psiUnmovable().recordStall(3e5); // 0.3 s stall/second
        kernel.advanceSeconds(1.0);
    }
    EXPECT_GT(policy.regions().boundary(), before);
    EXPECT_GT(policy.stats().controllerExpands, 0u);
}

TEST_F(ContiguitasPolicyTest, ControllerShrinksIdleRegion)
{
    // Grow first, then let movable pressure dominate.
    ASSERT_GT(policy.regions().expandUnmovable((64_MiB) / pageBytes),
              0u);
    const Pfn grown = policy.regions().boundary();
    for (int second = 1; second <= 30; ++second) {
        kernel.psiMovable().recordStall(3e5);
        kernel.advanceSeconds(1.0);
    }
    EXPECT_LT(policy.regions().boundary(), grown);
    EXPECT_GT(policy.stats().controllerShrinks, 0u);
    policy.regions().checkConfinement();
}

TEST_F(ContiguitasPolicyTest, MovableRegionHasGiganticContiguity)
{
    // With confinement, the movable region of a fresh kernel should
    // offer gigantic contiguity... on a 512 MiB machine no 1 GB
    // range exists, but 2 MB and 32 MB must be plentiful.
    const double frac2m = kernel.mem().stats().potentialContiguityFraction(
        policy.regions().boundary(),
        kernel.mem().numFrames(), scan::order2M);
    EXPECT_GT(frac2m, 0.95);
}

TEST_F(ContiguitasPolicyTest, SlabChurnsStayConfined)
{
    SlabAllocator slab(kernel);
    std::vector<SlabAllocator::ObjHandle> objs;
    for (int i = 0; i < 20000; ++i)
        objs.push_back(slab.allocObject(128));
    for (std::size_t i = 0; i < objs.size(); i += 2)
        slab.freeObject(objs[i]);
    policy.regions().checkConfinement();
    // Unmovable pages exist only below the boundary.
    const double unmov_above = kernel.mem().stats().unmovablePageRatio(
        policy.regions().boundary(),
        kernel.mem().numFrames());
    EXPECT_EQ(unmov_above, 0.0);
}

} // namespace
} // namespace ctg
