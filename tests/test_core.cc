/**
 * @file
 * Core trace-driver tests: accounting, warmup isolation, and the
 * Table CSV renderer.
 */

#include <gtest/gtest.h>

#include "base/table.hh"
#include "base/units.hh"
#include "hw/core.hh"

namespace ctg
{
namespace
{

class CoreTest : public ::testing::Test
{
  protected:
    CoreTest()
        : kernel(makeConfig()), tables(kernel)
    {
        // One code page, one data page.
        EXPECT_TRUE(tables.map(0x10, 0x100, 0));
        EXPECT_TRUE(tables.map(0x20, 0x200, 0));
    }

    static KernelConfig
    makeConfig()
    {
        KernelConfig config;
        config.memBytes = 256_MiB;
        config.kernelTextBytes = 2_MiB;
        return config;
    }

    Core::TraceFn
    fixedTrace()
    {
        return [] {
            Core::Op op;
            op.codeAddr = Addr{0x10} << pageShift;
            op.dataAddr = Addr{0x20} << pageShift;
            return op;
        };
    }

    Kernel kernel;
    PageTables tables;
    HwSystem hw;
};

TEST_F(CoreTest, AccountsOpsAndCycles)
{
    Core core(hw, 0, tables, 10);
    core.run(fixedTrace(), 100);
    EXPECT_EQ(core.stats().ops, 100u);
    // At minimum the compute cost accrues per op.
    EXPECT_GE(core.stats().totalCycles, 100u * 10u);
    EXPECT_GT(core.stats().cyclesPerOp(), 10.0);
}

TEST_F(CoreTest, FirstOpWalksThenTlbHits)
{
    Core core(hw, 0, tables, 10);
    core.run(fixedTrace(), 50);
    // Exactly one walk each for the code and data pages.
    EXPECT_EQ(core.stats().instrWalks, 1u);
    EXPECT_EQ(core.stats().dataWalks, 1u);
    EXPECT_GT(core.stats().instrWalkCycles, 0u);
}

TEST_F(CoreTest, WarmupDoesNotCount)
{
    Core core(hw, 0, tables, 10);
    core.warmup(fixedTrace(), 20);
    EXPECT_EQ(core.stats().ops, 0u);
    core.run(fixedTrace(), 10);
    EXPECT_EQ(core.stats().ops, 10u);
    // Walks happened during warmup; none during the measured run.
    EXPECT_EQ(core.stats().instrWalks, 0u);
    EXPECT_EQ(core.stats().dataWalks, 0u);
}

TEST_F(CoreTest, StoresPropagateValues)
{
    Core core(hw, 0, tables, 1);
    std::uint64_t counter = 0;
    const Core::TraceFn trace = [&counter] {
        Core::Op op;
        op.codeAddr = Addr{0x10} << pageShift;
        op.dataAddr = Addr{0x20} << pageShift;
        op.isWrite = true;
        op.writeValue = ++counter;
        return op;
    };
    core.run(trace, 5);
    EXPECT_EQ(hw.mem().authoritativeValue(Addr{0x200} << pageShift),
              5u);
}

TEST(TableCsv, EscapesAndAligns)
{
    Table table("t");
    table.header({"a", "b"});
    table.row({"plain", "with,comma"});
    table.row({"quote\"inside", "x"});
    const std::string csv = table.renderCsv();
    EXPECT_NE(csv.find("a,b\n"), std::string::npos);
    EXPECT_NE(csv.find("plain,\"with,comma\"\n"), std::string::npos);
    EXPECT_NE(csv.find("\"quote\"\"inside\",x\n"),
              std::string::npos);
}

} // namespace
} // namespace ctg
