/**
 * @file
 * Paper-figure golden regression tests: small-population versions of
 * the fleet studies asserting the *direction* of the paper's
 * headline results — so a perf refactor that silently corrupts the
 * science fails here, not in a human eyeball pass over bench output.
 *
 * Full-scale shape reproduction lives in bench/ and EXPERIMENTS.md;
 * these populations are deliberately small (seconds, not minutes)
 * and the thresholds deliberately loose: they encode inequalities
 * the paper claims (vanilla unmovable share >> Contiguitas share,
 * CDFs monotone and bounded), not exact percentages.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "base/stats.hh"
#include "base/units.hh"
#include "fleet/fleet.hh"

namespace ctg
{
namespace
{

Fleet::Config
figureFleet(const std::string &policy, unsigned servers)
{
    Fleet::Config config;
    config.servers = servers;
    config.memBytes = 512_MiB;
    config.policy.name = policy;
    config.minUptimeSec = 8.0;
    config.maxUptimeSec = 20.0;
    config.prefragmentFrac = 0.25;
    config.seed = 0x15ca2023;
    return config;
}

double
meanUnmovableShare(const std::vector<ServerScan> &scans)
{
    double sum = 0.0;
    for (const ServerScan &scan : scans)
        sum += scan.unmovableBlocks[0];
    return scans.empty() ? 0.0 : sum / double(scans.size());
}

double
mean(const std::vector<double> &xs)
{
    double sum = 0.0;
    for (const double x : xs)
        sum += x;
    return xs.empty() ? 0.0 : sum / double(xs.size());
}

double
median(std::vector<double> xs)
{
    std::sort(xs.begin(), xs.end());
    return xs.empty() ? 0.0 : xs[xs.size() / 2];
}

// ---------------------------------------------------------------
// Figure 11 / Figure 5 headline: confinement direction
// ---------------------------------------------------------------

TEST(FigureRegression, Fig11ConfinementDirectionHolds)
{
    // Paper: stock Linux averages 31% of 2 MB blocks contaminated by
    // unmovable pages (19-42% per workload); Contiguitas confines
    // them to at most 9% (average 7%). Assert the direction with
    // slack: vanilla must be at least double the Contiguitas share,
    // and both must sit on the right side of a loose absolute bar.
    const auto vanillaScans =
        Fleet(figureFleet("vanilla", 10)).run();
    const auto ctgScans = Fleet(figureFleet("contiguitas", 10)).run();

    std::vector<double> vanillaShare;
    std::vector<double> ctgShare;
    for (const ServerScan &scan : vanillaScans)
        vanillaShare.push_back(scan.unmovableBlocks[0]);
    for (const ServerScan &scan : ctgScans)
        ctgShare.push_back(scan.unmovableBlocks[0]);

    const double vanillaMean = mean(vanillaShare);
    const double ctgMean = mean(ctgShare);
    EXPECT_GT(vanillaMean, 0.10)
        << "vanilla fleet lost its fragmentation problem";
    EXPECT_LT(ctgMean, 0.15)
        << "Contiguitas lost its confinement";
    EXPECT_GT(vanillaMean, 2.0 * ctgMean)
        << "confinement advantage collapsed (paper: 31% vs 7%)";
    // Confinement holds per server, not just on average.
    const double ctgWorst =
        *std::max_element(ctgShare.begin(), ctgShare.end());
    const double vanillaWorst =
        *std::max_element(vanillaShare.begin(), vanillaShare.end());
    EXPECT_LT(ctgWorst, vanillaWorst);
}

TEST(FigureRegression, Fig05ScatteringAmplificationHolds)
{
    // Paper Section 2.5: a median ~7.6% of 4 KB pages are unmovable
    // yet they contaminate ~34% of 2 MB blocks — scattering
    // amplifies the page share by >4x. Assert amplification > 1.5x.
    const auto scans = Fleet(figureFleet("vanilla", 12)).run();
    std::vector<double> pageRatios;
    std::vector<double> blockRatios;
    for (const ServerScan &scan : scans) {
        pageRatios.push_back(scan.unmovablePageRatio);
        blockRatios.push_back(scan.unmovableBlocks[0]);
    }
    const double medianPages = median(pageRatios);
    const double medianBlocks = median(blockRatios);
    ASSERT_GT(medianPages, 0.0);
    EXPECT_GT(medianBlocks, 1.5 * medianPages)
        << "unmovable pages stopped scattering (paper: ~4.5x)";
}

// ---------------------------------------------------------------
// Figure 4: CDF sanity — monotone, bounded, ordered by granularity
// ---------------------------------------------------------------

TEST(FigureRegression, Fig04CdfsMonotoneAndBounded)
{
    const auto scans = Fleet(figureFleet("vanilla", 12)).run();
    ASSERT_FALSE(scans.empty());

    EmpiricalCdf cdfs[4];
    for (const ServerScan &scan : scans) {
        for (int i = 0; i < 4; ++i) {
            // Every per-server fraction is a fraction.
            EXPECT_GE(scan.freeContiguity[i], 0.0);
            EXPECT_LE(scan.freeContiguity[i], 1.0);
            cdfs[i].add(scan.freeContiguity[i] * 100.0);
        }
        // Coarser granularity can only hold less of free memory: a
        // free 1 GB block is made of free 32 MB blocks, and so on.
        EXPECT_GE(scan.freeContiguity[0], scan.freeContiguity[1]);
        EXPECT_GE(scan.freeContiguity[1], scan.freeContiguity[2]);
        EXPECT_GE(scan.freeContiguity[2], scan.freeContiguity[3]);
    }

    const double thresholds[] = {0,  2,  5,  10, 15,
                                 20, 30, 50, 80, 100};
    for (int i = 0; i < 4; ++i) {
        double prev = -1.0;
        for (const double x : thresholds) {
            const double f = cdfs[i].fractionAtOrBelow(x);
            EXPECT_GE(f, 0.0);
            EXPECT_LE(f, 1.0);
            EXPECT_GE(f, prev) << "CDF not monotone at " << x;
            prev = f;
        }
        EXPECT_DOUBLE_EQ(cdfs[i].fractionAtOrBelow(100.0), 1.0);
    }

    // Granularity ordering lifts to the CDFs: at any threshold, at
    // least as many servers sit at-or-below it for 1 GB as for 2 MB.
    for (const double x : thresholds) {
        EXPECT_LE(cdfs[0].fractionAtOrBelow(x),
                  cdfs[3].fractionAtOrBelow(x));
    }
}

// ---------------------------------------------------------------
// CTG_EXACT_PREF: placement changes, figures must not regress
// ---------------------------------------------------------------

TEST(FigureRegression, ExactPrefKeepsConfinementDirection)
{
    // Exact index-backed AddrPref placement deliberately changes
    // where blocks land (it strengthens the away-from-border bias),
    // so it gets its own regression: the Figure 11 confinement
    // direction must hold at least as well as with the capped scan.
    Fleet::Config exact = figureFleet("contiguitas", 10);
    exact.exactPref = true;
    const auto exactScans = Fleet(exact).run();
    const auto vanillaScans = Fleet(figureFleet("vanilla", 10)).run();

    std::vector<double> exactShare;
    std::vector<double> vanillaShare;
    for (const ServerScan &scan : exactScans)
        exactShare.push_back(scan.unmovableBlocks[0]);
    for (const ServerScan &scan : vanillaScans)
        vanillaShare.push_back(scan.unmovableBlocks[0]);

    const double exactMean = mean(exactShare);
    const double vanillaMean = mean(vanillaShare);
    EXPECT_LT(exactMean, 0.15)
        << "exact AddrPref placement broke confinement";
    EXPECT_GT(vanillaMean, 2.0 * exactMean)
        << "confinement advantage collapsed under exact AddrPref";
}

// ---------------------------------------------------------------
// Policy matrix: every confined policy keeps its direction
// ---------------------------------------------------------------

TEST(FigureRegression, EveryConfinedPolicyBeatsVanilla)
{
    // The sweep matrix's per-policy promise: vanilla scatters (the
    // paper's ~31% contaminated 2 MB blocks), while every
    // region-confining registry entry — dynamic contiguitas, the
    // no-bias ablation and the static ZONE_MOVABLE baseline — keeps
    // the contaminated share to less than half of vanilla's.
    const double vanillaMean =
        meanUnmovableShare(Fleet(figureFleet("vanilla", 10)).run());
    EXPECT_GT(vanillaMean, 0.10)
        << "vanilla fleet lost its fragmentation problem";

    for (const char *policy :
         {"contiguitas", "contiguitas-nobias", "zone-movable"}) {
        const double confinedMean = meanUnmovableShare(
            Fleet(figureFleet(policy, 10)).run());
        EXPECT_LT(confinedMean, 0.15) << policy;
        EXPECT_GT(vanillaMean, 2.0 * confinedMean)
            << policy << " lost its confinement advantage";
    }
}

TEST(FigureRegression, AgingWorkloadsShiftVanillaAsCalibrated)
{
    // The Mansi & Swift profiles must *move* the vanilla figures in
    // their calibrated directions: the pin-storm/kernel-object
    // service carries a much larger unmovable page footprint than
    // the web baseline, and the page-cache-dominated file server
    // contaminates fewer 2 MB blocks (cache pages are movable).
    auto runKind = [](const char *kind) {
        Fleet::Config config = figureFleet("vanilla", 8);
        config.workloadOverride = kind;
        const auto scans = Fleet(config).run();
        double pages = 0.0;
        for (const ServerScan &scan : scans)
            pages += scan.unmovablePageRatio;
        return std::make_pair(meanUnmovableShare(scans),
                              pages / double(scans.size()));
    };
    const auto [webBlocks, webPages] = runKind("web");
    const auto [burstyBlocks, burstyPages] =
        runKind("unmovable-bursty");
    const auto [fsBlocks, fsPages] = runKind("fs-cache");

    ASSERT_GT(webPages, 0.0);
    EXPECT_GT(burstyPages, 1.5 * webPages)
        << "pin storms lost their unmovable footprint";
    EXPECT_GE(burstyBlocks, webBlocks)
        << "pin storms stopped scattering unmovable pages";
    EXPECT_LT(fsBlocks, webBlocks)
        << "page-cache-heavy profile lost its movable skew";
    (void)fsPages;
}

} // namespace
} // namespace ctg
