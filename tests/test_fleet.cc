/**
 * @file
 * Fleet layer tests: per-server scans, determinism, workload
 * diversity, prefragmentation effects, and the vanilla-vs-Contiguitas
 * fleet contrast that underlies Figures 4/5/11.
 */

#include <gtest/gtest.h>

#include "base/units.hh"
#include "fleet/fleet.hh"

namespace ctg
{
namespace
{

Server::Config
fastServer(WorkloadKind kind, bool contiguitas)
{
    Server::Config config;
    config.memBytes = 1_GiB;
    config.policy.name = contiguitas ? "contiguitas" : "vanilla";
    config.kind = kind;
    config.uptimeSec = 12.0;
    config.seed = 77;
    return config;
}

TEST(ServerTest, ScanFieldsConsistent)
{
    Server server(fastServer(WorkloadKind::CacheB, false));
    const ServerScan scan = server.run();
    for (int i = 0; i < 4; ++i) {
        EXPECT_GE(scan.unmovableBlocks[i], 0.0);
        EXPECT_LE(scan.unmovableBlocks[i], 1.0);
        EXPECT_GE(scan.freeContiguity[i], 0.0);
        EXPECT_LE(scan.freeContiguity[i], 1.0);
    }
    // Coarser granularity can only be more contaminated.
    EXPECT_LE(scan.unmovableBlocks[0], scan.unmovableBlocks[1]);
    EXPECT_LE(scan.unmovableBlocks[1], scan.unmovableBlocks[2]);
    EXPECT_LE(scan.unmovableBlocks[2], scan.unmovableBlocks[3]);
    // ...and potential contiguity smaller.
    EXPECT_GE(scan.potentialContiguity[0],
              scan.potentialContiguity[1]);
    EXPECT_GE(scan.potentialContiguity[1],
              scan.potentialContiguity[2]);
    EXPECT_GT(scan.unmovablePageRatio, 0.0);
    EXPECT_GT(scan.freePages, 0u);
}

TEST(ServerTest, DeterministicForSameSeed)
{
    Server a(fastServer(WorkloadKind::Web, false));
    Server b(fastServer(WorkloadKind::Web, false));
    const ServerScan sa = a.run();
    const ServerScan sb = b.run();
    EXPECT_DOUBLE_EQ(sa.unmovablePageRatio, sb.unmovablePageRatio);
    EXPECT_EQ(sa.freePages, sb.freePages);
    EXPECT_DOUBLE_EQ(sa.unmovableBlocks[0], sb.unmovableBlocks[0]);
}

TEST(ServerTest, SeedChangesOutcome)
{
    Server::Config config = fastServer(WorkloadKind::Web, false);
    Server a(config);
    config.seed = 78;
    Server b(config);
    EXPECT_NE(a.run().freePages, b.run().freePages);
}

TEST(ServerTest, PrefragmentationDestroysPotentialContiguity)
{
    Server::Config config = fastServer(WorkloadKind::CacheB, false);
    Server clean(config);
    config.prefragment = true;
    Server dirty(config);
    const ServerScan clean_scan = clean.run();
    const ServerScan dirty_scan = dirty.run();
    EXPECT_LT(dirty_scan.potentialContiguity[0],
              clean_scan.potentialContiguity[0]);
    EXPECT_GT(dirty_scan.unmovableBlocks[0],
              clean_scan.unmovableBlocks[0]);
}

TEST(ServerTest, ContiguitasBeatsVanillaOnSameSeed)
{
    const ServerScan vanilla =
        Server(fastServer(WorkloadKind::CacheB, false)).run();
    const ServerScan contiguitas =
        Server(fastServer(WorkloadKind::CacheB, true)).run();
    // Confinement: strictly better potential contiguity at 32MB.
    EXPECT_GT(contiguitas.potentialContiguity[1],
              vanilla.potentialContiguity[1]);
}

TEST(FleetTest, RunsRequestedPopulation)
{
    Fleet::Config config;
    config.servers = 6;
    config.memBytes = 1_GiB;
    config.minUptimeSec = 4.0;
    config.maxUptimeSec = 10.0;
    Fleet fleet(config);
    const auto scans = fleet.run();
    EXPECT_EQ(scans.size(), 6u);
    // Diversity: not all servers identical.
    bool differs = false;
    for (std::size_t i = 1; i < scans.size(); ++i)
        differs |= scans[i].freePages != scans[0].freePages;
    EXPECT_TRUE(differs);
}

TEST(FleetTest, UptimesWithinConfiguredRange)
{
    Fleet::Config config;
    config.servers = 5;
    config.memBytes = 1_GiB;
    config.minUptimeSec = 3.0;
    config.maxUptimeSec = 6.0;
    Fleet fleet(config);
    for (const ServerScan &scan : fleet.run()) {
        EXPECT_GE(scan.uptimeSec, 3.0);
        EXPECT_LE(scan.uptimeSec, 6.5);
    }
}

TEST(ScaleProfileTest, MultipliesRates)
{
    const WorkloadProfile base =
        makeProfile(WorkloadKind::Web, 1_GiB);
    const WorkloadProfile scaled = scaleProfile(base, 2.0);
    EXPECT_NEAR(scaled.net.skbRatePerSec,
                base.net.skbRatePerSec * 2.0, 1e-6);
    EXPECT_NEAR(scaled.heapChurnFracPerSec,
                base.heapChurnFracPerSec * 2.0, 1e-9);
}

} // namespace
} // namespace ctg
