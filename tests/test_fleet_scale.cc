/**
 * @file
 * Scale-tier suite for the struct-of-arrays frame table and the
 * 10^5-server fleet path. Differentially verifies the packed SoA
 * layout against the old array-of-structs semantics (PageFrame is
 * kept as the materialized reference value type), pins the
 * bytes/frame budget the fleet-scale bench reports, proves the
 * shared per-population config tables are a pure cache, and runs the
 * fig11-shaped scale tier through the three hard contracts:
 * bit-identical at any CTG_THREADS, bit-identical snapshot
 * round-trips, and auditor-clean with every fault site armed.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <vector>

#include "base/arena.hh"
#include "base/rng.hh"
#include "base/serde.hh"
#include "base/span_trace.hh"
#include "base/units.hh"
#include "bench/bench_util.hh"
#include "fleet/fleet.hh"
#include "fleet/sharding.hh"
#include "fleet/shared_tables.hh"
#include "mem/auditor.hh"
#include "mem/buddy.hh"
#include "mem/physmem.hh"
#include "mem/side_table.hh"
#include "sim/fault_injector.hh"
#include "sim/snapshot.hh"
#include "workloads/profile.hh"

namespace ctg
{
namespace
{

std::uint64_t
bits(double v)
{
    std::uint64_t out;
    std::memcpy(&out, &v, sizeof(out));
    return out;
}

std::vector<std::uint64_t>
scanBits(const ServerScan &scan)
{
    std::vector<std::uint64_t> out;
    for (const double v : scan.freeContiguity)
        out.push_back(bits(v));
    for (const double v : scan.unmovableBlocks)
        out.push_back(bits(v));
    for (const double v : scan.potentialContiguity)
        out.push_back(bits(v));
    out.push_back(bits(scan.unmovablePageRatio));
    for (const std::uint64_t v : scan.bySource)
        out.push_back(v);
    out.push_back(scan.freePages);
    out.push_back(scan.free2mBlocks);
    out.push_back(bits(scan.unmovableRegionFreeShare));
    out.push_back(bits(scan.uptimeSec));
    return out;
}

std::vector<std::uint64_t>
scansBits(const std::vector<ServerScan> &scans)
{
    std::vector<std::uint64_t> out;
    for (const ServerScan &scan : scans) {
        const std::vector<std::uint64_t> one = scanBits(scan);
        out.insert(out.end(), one.begin(), one.end());
    }
    return out;
}

// ---------------------------------------------------------------
// SoA / AoS differential equivalence
// ---------------------------------------------------------------

/** The packed-word fields of a materialized frame (the part a
 * shadow PageFrame can predict without knowing block geometry). */
void
expectWordFieldsEqual(const PageFrame &want, const PageFrame &got,
                      Pfn pfn)
{
    EXPECT_EQ(want.flags, got.flags) << "pfn " << pfn;
    EXPECT_EQ(want.order, got.order) << "pfn " << pfn;
    EXPECT_EQ(want.migrateType, got.migrateType) << "pfn " << pfn;
    EXPECT_EQ(want.source, got.source) << "pfn " << pfn;
}

TEST(FrameTableEquivalence, ProxySettersMatchPageFrameReference)
{
    // Drive the FrameRef proxy and a shadow array-of-structs
    // PageFrame vector through the same randomized setter sequence;
    // after every op the materialized word fields must agree
    // everywhere. This is the field-for-field proof that the packed
    // 16-bit meta word reproduces the old per-frame struct.
    constexpr Pfn n = 256;
    FrameArray soa(n);
    std::vector<PageFrame> aos(n);
    Rng rng(0x50a7e57);

    for (int op = 0; op < 5000; ++op) {
        const Pfn pfn = rng.below(n);
        auto f = soa.frame(pfn);
        PageFrame &s = aos[pfn];
        switch (rng.below(9)) {
          case 0: {
            const bool v = rng.chance(0.5);
            f.setFree(v);
            s.setFree(v);
            break;
          }
          case 1: {
            const bool v = rng.chance(0.5);
            f.setHead(v);
            s.setHead(v);
            break;
          }
          case 2: {
            const bool v = rng.chance(0.5);
            f.setPinned(v);
            s.setPinned(v);
            break;
          }
          case 3: {
            const bool v = rng.chance(0.5);
            f.setMigrating(v);
            s.setMigrating(v);
            break;
          }
          case 4: {
            const unsigned order = rng.chance(0.1)
                                       ? gigaOrder
                                       : rng.below(maxOrder + 1);
            f.setOrder(order);
            s.order = static_cast<std::uint8_t>(order);
            break;
          }
          case 5: {
            const auto mt = static_cast<MigrateType>(
                rng.below(numMigrateTypes));
            f.setMigrateType(mt);
            s.migrateType = mt;
            break;
          }
          case 6: {
            const auto src = static_cast<AllocSource>(
                rng.below(numAllocSources));
            f.setSource(src);
            s.source = src;
            break;
          }
          case 7: {
            const unsigned order = rng.below(maxOrder + 1);
            const auto mt = static_cast<MigrateType>(
                rng.below(numMigrateTypes));
            const auto src = static_cast<AllocSource>(
                rng.below(numAllocSources));
            const bool head = rng.chance(0.5);
            f.stampAllocated(order, mt, src, head);
            s = PageFrame{};
            s.setHead(head);
            s.order = static_cast<std::uint8_t>(order);
            s.migrateType = mt;
            s.source = src;
            break;
          }
          case 8:
            f.reset();
            s = PageFrame{};
            break;
        }
        expectWordFieldsEqual(s, soa.get(pfn), pfn);
        EXPECT_EQ(s.isUnmovableAllocation(),
                  soa.frame(pfn).isUnmovableAllocation());
        if (::testing::Test::HasFailure())
            FAIL() << "diverged at op " << op;
    }
    // Full-array sweep: nothing outside the touched frames drifted.
    for (Pfn pfn = 0; pfn < n; ++pfn)
        expectWordFieldsEqual(aos[pfn], soa.get(pfn), pfn);
}

TEST(FrameTableEquivalence, AllocationStampsMatchAosSemantics)
{
    // Replay exactly what the old AoS markAllocated loop stored and
    // check every cold field materializes identically: the owner
    // handle (now overlaid on the head's link slots) and the
    // allocation second (now in the side table) must read back on
    // *every* member frame, not just the head.
    FrameArray fa(1024);
    const struct
    {
        Pfn head;
        unsigned order;
        MigrateType mt;
        AllocSource src;
        std::uint64_t owner;
        std::uint32_t second;
    } blocks[] = {
        {0, 3, MigrateType::Movable, AllocSource::User,
         0xfeedfacecafef00dULL, 41},
        {16, 0, MigrateType::Unmovable, AllocSource::Slab,
         0xffffffffffffffffULL, 7},
        {512, 9, MigrateType::Reclaimable, AllocSource::Networking,
         1, 1000000},
    };
    for (const auto &b : blocks) {
        for (Pfn pfn = b.head; pfn < b.head + (Pfn{1} << b.order);
             ++pfn)
            fa.frame(pfn).stampAllocated(b.order, b.mt, b.src,
                                         pfn == b.head);
        fa.frame(b.head).setAllocInfo(b.owner, b.second);
    }
    EXPECT_EQ(fa.sideTableEntries(), 3u);

    for (const auto &b : blocks) {
        for (Pfn pfn = b.head; pfn < b.head + (Pfn{1} << b.order);
             ++pfn) {
            const PageFrame got = fa.get(pfn);
            EXPECT_FALSE(got.isFree()) << "pfn " << pfn;
            EXPECT_EQ(got.isHead(), pfn == b.head) << "pfn " << pfn;
            EXPECT_EQ(got.order, b.order) << "pfn " << pfn;
            EXPECT_EQ(got.migrateType, b.mt) << "pfn " << pfn;
            EXPECT_EQ(got.source, b.src) << "pfn " << pfn;
            EXPECT_EQ(got.owner, b.owner) << "pfn " << pfn;
            EXPECT_EQ(got.allocSecond, b.second) << "pfn " << pfn;
        }
    }

    // Freeing (reset) drains the side table and zeroes the word.
    // The link slots keep stale bits until the buddy relinks the
    // frame into a free list — same as the old layout's stale links
    // — so owner() is only defined again once FlagFree is set, at
    // which point it must read 0 exactly as the AoS reset did.
    for (const auto &b : blocks)
        for (Pfn pfn = b.head; pfn < b.head + (Pfn{1} << b.order);
             ++pfn)
            fa.frame(pfn).reset();
    EXPECT_EQ(fa.sideTableEntries(), 0u);
    for (const auto &b : blocks) {
        EXPECT_EQ(fa.get(b.head).flags, 0);
        EXPECT_EQ(fa.get(b.head).allocSecond, 0u);
        fa.frame(b.head).setFree(true);
        EXPECT_EQ(fa.get(b.head).owner, 0u);
        EXPECT_EQ(fa.get(b.head).allocSecond, 0u);
    }
}

/** One live allocation the property test tracks. */
struct Held
{
    Pfn head;
    unsigned order;
    MigrateType mt;
    AllocSource src;
    std::uint64_t owner;
    std::uint32_t second;
    bool pinned = false;
};

void
expectBlockMatches(const PhysMem &mem, const Held &h)
{
    for (Pfn pfn = h.head; pfn < h.head + (Pfn{1} << h.order);
         ++pfn) {
        const PageFrame got = mem.frames().get(pfn);
        ASSERT_FALSE(got.isFree()) << "pfn " << pfn;
        EXPECT_EQ(got.isHead(), pfn == h.head) << "pfn " << pfn;
        EXPECT_EQ(got.isPinned(), h.pinned) << "pfn " << pfn;
        EXPECT_EQ(got.order, h.order) << "pfn " << pfn;
        EXPECT_EQ(got.migrateType, h.mt) << "pfn " << pfn;
        EXPECT_EQ(got.source, h.src) << "pfn " << pfn;
        EXPECT_EQ(got.owner, h.owner) << "pfn " << pfn;
        EXPECT_EQ(got.allocSecond, h.second) << "pfn " << pfn;
    }
}

TEST(FrameTableEquivalence, BuddyDrivenRandomizedProperty)
{
    // The real allocator, random alloc/free/pin churn, and the old
    // AoS contract checked from the outside: every tracked live
    // block must materialize exactly the fields the old layout
    // stored, every free frame must read owner/allocSecond 0, and
    // the side table must hold exactly one entry per live block
    // allocated at a nonzero second.
    faultInjector().reset();
    PhysMem mem(64_MiB);
    BuddyAllocator alloc(mem, 0, mem.numFrames(), "soa_prop");
    MemAuditor auditor(mem);
    auditor.addAllocator(&alloc);

    Rng rng(0xd1ffe7e57);
    std::vector<Held> held;
    std::uint64_t expectSideEntries = 0;
    for (int op = 0; op < 4000; ++op) {
        mem.nowSeconds = static_cast<std::uint32_t>(op / 16);
        const double roll = rng.uniform();
        if (roll < 0.55) {
            Held h;
            h.order = static_cast<unsigned>(rng.below(4));
            h.mt = static_cast<MigrateType>(rng.below(3));
            h.src = static_cast<AllocSource>(
                rng.below(numAllocSources));
            h.owner = rng.next() | 1; // nonzero: 0 means "free"
            h.second = mem.nowSeconds;
            h.head = alloc.allocPages(h.order, h.mt, h.src, h.owner);
            if (h.head != invalidPfn) {
                held.push_back(h);
                if (h.second != 0)
                    ++expectSideEntries;
            }
        } else if (roll < 0.85 && !held.empty()) {
            const std::size_t pick = rng.below(held.size());
            const Held h = held[pick];
            if (h.pinned)
                mem.setBlockPinned(h.head, false);
            alloc.freePages(h.head);
            if (h.second != 0)
                --expectSideEntries;
            held[pick] = held.back();
            held.pop_back();
        } else if (!held.empty()) {
            const std::size_t pick = rng.below(held.size());
            held[pick].pinned = !held[pick].pinned;
            mem.setBlockPinned(held[pick].head,
                               held[pick].pinned);
        }

        if (op % 250 == 0 || op == 3999) {
            alloc.checkInvariants();
            const AuditReport report = auditor.audit();
            ASSERT_TRUE(report.ok()) << report.summary();
            ASSERT_EQ(mem.frames().sideTableEntries(),
                      expectSideEntries)
                << "op " << op;
            for (const Held &h : held)
                expectBlockMatches(mem, h);
            if (::testing::Test::HasFailure())
                FAIL() << "diverged at op " << op;
        }
    }

    // Drain everything: the table must read as all-free with no
    // residual owner handles or side-table entries.
    for (const Held &h : held) {
        if (h.pinned)
            mem.setBlockPinned(h.head, false);
        alloc.freePages(h.head);
    }
    EXPECT_EQ(alloc.freePageCount(), mem.numFrames());
    EXPECT_EQ(mem.frames().sideTableEntries(), 0u);
    for (Pfn pfn = 0; pfn < mem.numFrames(); ++pfn) {
        const PageFrame got = mem.frames().get(pfn);
        ASSERT_TRUE(got.isFree()) << "pfn " << pfn;
        ASSERT_EQ(got.owner, 0u) << "pfn " << pfn;
        ASSERT_EQ(got.allocSecond, 0u) << "pfn " << pfn;
        ASSERT_FALSE(got.isPinned()) << "pfn " << pfn;
    }
    alloc.checkInvariants();
}

TEST(FrameTableEquivalence, GiganticAllocationStampsEveryFrame)
{
    // A gigantic block is 2^18 frames sharing one owner handle and
    // one side-table entry; the overlay must resolve through the
    // gigaOrder-aligned head for members arbitrarily far away.
    PhysMem mem(1_GiB);
    BuddyAllocator alloc(mem, 0, mem.numFrames(), "giga");
    mem.nowSeconds = 99;
    const Pfn head = alloc.allocGigantic(
        MigrateType::Movable, AllocSource::User,
        0xabcdef0123456789ULL);
    ASSERT_NE(head, invalidPfn);
    EXPECT_EQ(mem.frames().sideTableEntries(), 1u);
    const Pfn probes[] = {head, head + 1, head + 511,
                          head + pagesPerGiga / 2,
                          head + pagesPerGiga - 1};
    for (const Pfn pfn : probes) {
        const PageFrame got = mem.frames().get(pfn);
        EXPECT_FALSE(got.isFree()) << "pfn " << pfn;
        EXPECT_EQ(got.order, gigaOrder) << "pfn " << pfn;
        EXPECT_EQ(got.owner, 0xabcdef0123456789ULL) << "pfn " << pfn;
        EXPECT_EQ(got.allocSecond, 99u) << "pfn " << pfn;
        EXPECT_EQ(got.isHead(), pfn == head) << "pfn " << pfn;
    }
}

TEST(FrameTableEquivalence, DetachAttachKeepsFramesEquivalent)
{
    // Region-resizing handoff: detached frames stay free (but
    // unlisted), re-attached frames come back allocatable, and the
    // materialized view never shows a phantom owner.
    PhysMem mem(64_MiB);
    BuddyAllocator alloc(mem, 0, mem.numFrames(), "resize");
    const Pfn cut = mem.numFrames() / 2;
    alloc.detachRange(cut, mem.numFrames());
    for (Pfn pfn = cut; pfn < mem.numFrames(); pfn += 117) {
        const PageFrame got = mem.frames().get(pfn);
        EXPECT_TRUE(got.isFree()) << "pfn " << pfn;
        EXPECT_EQ(got.owner, 0u) << "pfn " << pfn;
    }
    alloc.attachRange(cut, mem.numFrames(),
                      MigrateType::Unmovable);
    EXPECT_EQ(alloc.freePageCount(), mem.numFrames());
    alloc.checkInvariants();
    const Pfn head = alloc.allocPages(0, MigrateType::Unmovable,
                                      AllocSource::Slab, 0x77);
    ASSERT_NE(head, invalidPfn);
    EXPECT_EQ(mem.frames().get(head).owner, 0x77u);
    MemAuditor auditor(mem);
    auditor.addAllocator(&alloc);
    const AuditReport report = auditor.audit();
    EXPECT_TRUE(report.ok()) << report.summary();
}

// ---------------------------------------------------------------
// Side table behaviour
// ---------------------------------------------------------------

TEST(SideTable, GrowsShrinksAndRoundTrips)
{
    AllocSideTable table;
    EXPECT_EQ(table.bytes(), 0u);
    for (std::uint32_t k = 0; k < 10000; ++k)
        table.set(k * 7, k + 1);
    EXPECT_EQ(table.size(), 10000u);
    for (std::uint32_t k = 0; k < 10000; ++k)
        EXPECT_EQ(table.secondFor(k * 7), k + 1);
    EXPECT_EQ(table.secondFor(3), 0u); // absent reads as zero

    const std::uint64_t grown = table.bytes();
    for (std::uint32_t k = 0; k < 10000; ++k)
        table.erase(k * 7);
    EXPECT_EQ(table.size(), 0u);
    // Shrink-on-erase must have released the bulk of the slots.
    EXPECT_LT(table.bytes(), grown / 64);
}

TEST(SideTable, ZeroSecondMeansAbsent)
{
    // The old layout's default allocSecond was 0; the sparse table
    // encodes that as "no entry", so storing 0 erases.
    AllocSideTable table;
    table.set(5, 123);
    EXPECT_EQ(table.size(), 1u);
    table.set(5, 0);
    EXPECT_EQ(table.size(), 0u);
    EXPECT_EQ(table.secondFor(5), 0u);
    table.set(9, 0); // no-op insert
    EXPECT_EQ(table.size(), 0u);
}

TEST(SideTable, SortedEntriesAreCanonical)
{
    AllocSideTable table;
    const std::uint32_t keys[] = {900, 4, 77, 13, 500};
    for (const std::uint32_t k : keys)
        table.set(k, k + 1);
    const auto entries = table.sortedEntries();
    ASSERT_EQ(entries.size(), 5u);
    for (std::size_t i = 1; i < entries.size(); ++i)
        EXPECT_LT(entries[i - 1].key, entries[i].key);
}

// ---------------------------------------------------------------
// Bench CLI parser
// ---------------------------------------------------------------

TEST(BenchCli, BothFlagSpellingsParse)
{
    bench::jsonOutPath().clear();
    std::string servers;
    char prog[] = "fleet_scale";
    char a1[] = "--servers";
    char a2[] = "123";
    char a3[] = "--json=/tmp/out.json";
    char *argv[] = {prog, a1, a2, a3};
    bench::parseArgs(4, argv,
                     {{"servers", &servers, "population size"}});
    EXPECT_EQ(servers, "123");
    EXPECT_EQ(bench::jsonOutPath(), "/tmp/out.json");
    EXPECT_EQ(bench::flagU64(servers, "servers"), 123u);
    bench::jsonOutPath().clear();
}

TEST(BenchCli, UnknownFlagExitsWithUsage)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    char prog[] = "fleet_scale";
    char bogus[] = "--bogus-flag";
    char *argv[] = {prog, bogus};
    EXPECT_EXIT(bench::parseArgs(2, argv),
                ::testing::ExitedWithCode(2),
                "unknown bench argument '--bogus-flag'");
}

TEST(BenchCli, MissingValueExitsWithUsage)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    std::string servers;
    char prog[] = "fleet_scale";
    char flag[] = "--servers";
    char *argv[] = {prog, flag};
    EXPECT_EXIT(
        bench::parseArgs(2, argv,
                         {{"servers", &servers, "population size"}}),
        ::testing::ExitedWithCode(2),
        "missing value for '--servers'");
}

TEST(BenchCli, NonIntegerValueExitsWithUsage)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_EXIT(bench::flagU64("notanumber", "servers"),
                ::testing::ExitedWithCode(2),
                "flag --servers wants an integer, got 'notanumber'");
}

// ---------------------------------------------------------------
// Footprint budget
// ---------------------------------------------------------------

TEST(FrameTableFootprint, FixedCostIsTenBytesPerFrame)
{
    // 2 (meta) + 4 + 4 (links) with an empty side table. This is
    // the structural floor the fleet-scale bench builds on; a change
    // here is a capacity-planning event, not noise.
    const FrameArray fa(4096);
    EXPECT_EQ(fa.bytesUsed(), 4096u * 10u);
    EXPECT_EQ(fa.sideTableEntries(), 0u);
}

TEST(FrameTableFootprint, RepresentativeServerStaysUnderBudget)
{
    // The fleet-scale acceptance: a churned, pre-fragmented scale-
    // tier server (the worst case the bench measures) must stay
    // under 20 bytes/frame — at least 2x under the 40 bytes/frame
    // array-of-structs table the roadmap retired.
    faultInjector().reset();
    Server::Config config;
    config.memBytes = 64_MiB;
    config.kind = WorkloadKind::Web;
    config.prefragment = true;
    config.uptimeSec = 4.0;
    config.seed = 0xb06e7;
    Server server(config);
    server.run();
    const FrameArray &frames = server.kernel().mem().frames();
    const double perFrame =
        static_cast<double>(frames.bytesUsed()) /
        static_cast<double>(server.kernel().mem().numFrames());
    EXPECT_LT(perFrame, 20.0);
    EXPECT_GE(perFrame, 10.0); // the structural floor
}

// ---------------------------------------------------------------
// Snapshot link/side-table validation (hostile images)
// ---------------------------------------------------------------

/** Pack one meta word the way the frame table does. */
std::uint16_t
packMeta(std::uint8_t flags, unsigned order, MigrateType mt,
         AllocSource src)
{
    return static_cast<std::uint16_t>(
        flags |
        (static_cast<std::uint16_t>(mt) << FrameArray::metaMtShift) |
        (static_cast<std::uint16_t>(src)
         << FrameArray::metaSrcShift) |
        (order << FrameArray::metaOrderShift));
}

/** A hand-buildable image of a 64-frame table. */
struct RawTable
{
    std::vector<std::uint16_t> meta;
    std::vector<std::uint32_t> next;
    std::vector<std::uint32_t> prev;
    std::vector<AllocSideTable::Entry> entries;

    RawTable()
        : meta(64, packMeta(PageFrame::FlagFree, 0,
                            MigrateType::Movable,
                            AllocSource::User)),
          next(64, FrameArray::nil), prev(64, FrameArray::nil)
    {
        // Frame 0: a free order-2 list head. Frames 8..9: an
        // allocated order-1 block whose head carries an overlaid
        // owner handle and a side-table timestamp.
        meta[0] = packMeta(PageFrame::FlagFree | PageFrame::FlagHead,
                           2, MigrateType::Movable,
                           AllocSource::User);
        meta[8] = packMeta(PageFrame::FlagHead, 1,
                           MigrateType::Unmovable, AllocSource::Slab);
        meta[9] = packMeta(0, 1, MigrateType::Unmovable,
                           AllocSource::Slab);
        next[8] = 0xdeadbeef; // owner low half — NOT a link
        prev[8] = 0xfeedface; // owner high half — NOT a link
        entries.push_back(AllocSideTable::Entry{8, 42});
    }

    std::vector<std::uint8_t>
    serialize() const
    {
        serde::Writer out;
        out.putPodVector(meta);
        out.putPodVector(next);
        out.putPodVector(prev);
        out.putU64(entries.size());
        for (const AllocSideTable::Entry &e : entries) {
            out.putU32(e.key);
            out.putU32(e.second);
        }
        return out.bytes();
    }
};

void
expectLoadThrows(const RawTable &raw, const char *why)
{
    const std::vector<std::uint8_t> bytes = raw.serialize();
    serde::Reader in(bytes);
    FrameArray fa(64);
    EXPECT_THROW(fa.loadFrom(in), serde::Error) << why;
}

TEST(FrameTableRestore, WellFormedImageRoundTripsByteExactly)
{
    const RawTable raw;
    const std::vector<std::uint8_t> bytes = raw.serialize();
    serde::Reader in(bytes);
    FrameArray fa(64);
    ASSERT_NO_THROW(fa.loadFrom(in));
    // The restored table materializes the allocated head with its
    // overlaid owner and side-table second...
    const PageFrame head = fa.get(8);
    EXPECT_EQ(head.owner, 0xfeedface00000000ULL | 0xdeadbeefULL);
    EXPECT_EQ(head.allocSecond, 42u);
    EXPECT_EQ(fa.get(9).owner, head.owner);
    // ...and re-serializes to the identical image (canonical side
    // table order, bitwise-stable columns).
    serde::Writer out;
    fa.saveTo(out);
    EXPECT_EQ(out.bytes(), bytes);
}

TEST(FrameTableRestore, TraversableLinkOutOfRangeIsRefused)
{
    // Free-list member links must be validated before the buddy
    // restore walks them: index 64 is one past the table.
    RawTable raw;
    raw.next[0] = 64;
    expectLoadThrows(raw, "free head next out of range");
    RawTable raw2;
    raw2.prev[0] = 0xfffffffe; // large but != nil
    expectLoadThrows(raw2, "free head prev out of range");
}

TEST(FrameTableRestore, AllocatedHeadLinksAreNotValidatedAsLinks)
{
    // The same huge values on an *allocated* head are owner-handle
    // bits, not links — they must load fine. (A link-validation
    // pass that forgot the overlay would reject every snapshot with
    // a large owner handle.)
    RawTable raw;
    raw.next[8] = 0xfffffffe;
    raw.prev[8] = 0xfffffffe;
    const std::vector<std::uint8_t> bytes = raw.serialize();
    serde::Reader in(bytes);
    FrameArray fa(64);
    ASSERT_NO_THROW(fa.loadFrom(in));
    EXPECT_EQ(fa.get(8).owner, 0xfffffffefffffffeULL);
}

TEST(FrameTableRestore, HostileSideTablesAreRefused)
{
    {
        RawTable raw;
        raw.entries[0].key = 64; // out of range
        expectLoadThrows(raw, "key out of range");
    }
    {
        RawTable raw;
        raw.entries[0].key = 0; // frame 0 is free — not a valid key
        expectLoadThrows(raw, "key names a free frame");
    }
    {
        RawTable raw;
        raw.entries[0].key = 9; // allocated but not a head
        expectLoadThrows(raw, "key names a non-head");
    }
    {
        RawTable raw;
        raw.entries[0].second = 0; // absent must be absent
        expectLoadThrows(raw, "zero second");
    }
    {
        RawTable raw; // duplicate/unsorted keys
        raw.entries.push_back(AllocSideTable::Entry{8, 43});
        expectLoadThrows(raw, "unsorted side table");
    }
    {
        RawTable raw;
        raw.entries.clear();
        for (std::uint32_t k = 0; k < 65; ++k)
            raw.entries.push_back(AllocSideTable::Entry{k, 1});
        expectLoadThrows(raw, "more entries than frames");
    }
}

TEST(FrameTableRestore, HostileMetaWordsAreRefused)
{
    {
        RawTable raw;
        raw.meta[3] = packMeta(PageFrame::FlagFree, maxOrder + 1,
                               MigrateType::Movable,
                               AllocSource::User);
        expectLoadThrows(raw, "order beyond maxOrder");
    }
    {
        RawTable raw;
        raw.meta[3] |= FrameArray::metaSpareMask;
        expectLoadThrows(raw, "spare bits set");
    }
    {
        RawTable raw;
        raw.meta[3] = static_cast<std::uint16_t>(
            PageFrame::FlagFree |
            (7u << FrameArray::metaSrcShift)); // src 7 >= 7
        expectLoadThrows(raw, "alloc source out of range");
    }
    {
        RawTable raw;
        raw.meta.resize(63); // column length mismatch
        expectLoadThrows(raw, "size mismatch");
    }
}

// ---------------------------------------------------------------
// Shared per-population config tables
// ---------------------------------------------------------------

TEST(SharedTables, CacheMatchesMakeProfileFieldForField)
{
    const auto tables = SharedFleetTables::make(512_MiB);
    for (unsigned k = 0; k < numWorkloadKinds; ++k) {
        const auto kind = static_cast<WorkloadKind>(k);
        const WorkloadProfile &cached = tables->profile(kind);
        const WorkloadProfile fresh = makeProfile(kind, 512_MiB);
        EXPECT_EQ(cached.name, fresh.name);
        EXPECT_EQ(cached.kind, fresh.kind);
        EXPECT_EQ(bits(cached.residentFrac),
                  bits(fresh.residentFrac));
        EXPECT_EQ(cached.processes, fresh.processes);
        EXPECT_EQ(bits(cached.heapChurnFracPerSec),
                  bits(fresh.heapChurnFracPerSec));
        EXPECT_EQ(bits(cached.jobTurnoverPerSec),
                  bits(fresh.jobTurnoverPerSec));
        EXPECT_EQ(bits(cached.miscRatePerSec),
                  bits(fresh.miscRatePerSec));
        EXPECT_EQ(bits(cached.residentKernelPagesPerSec),
                  bits(fresh.residentKernelPagesPerSec));
        EXPECT_EQ(bits(cached.khugepagedChunksPerSec),
                  bits(fresh.khugepagedChunksPerSec));
        EXPECT_EQ(bits(cached.pinRatePerSec),
                  bits(fresh.pinRatePerSec));
    }
    EXPECT_GT(tables->bytes(), 0u);
}

TEST(SharedTables, ServerRunsBitIdenticallyWithAndWithoutCache)
{
    // The tables are a pure cache: presence (or a memBytes mismatch
    // forcing the fallback path) must not move a single bit of the
    // simulation.
    faultInjector().reset();
    Server::Config config;
    config.memBytes = 128_MiB;
    config.policy.name = "contiguitas";
    config.kind = WorkloadKind::CacheA;
    config.intensity = 1.2;
    config.prefragment = true;
    config.uptimeSec = 4.0;
    config.seed = 0xcac4e;

    Server plain(config);
    const auto baseline = scanBits(plain.run());

    config.sharedTables = SharedFleetTables::make(config.memBytes);
    Server cached(config);
    EXPECT_EQ(scanBits(cached.run()), baseline);

    // Mismatched cache: ignored, not misused.
    config.sharedTables = SharedFleetTables::make(256_MiB);
    Server mismatched(config);
    EXPECT_EQ(scanBits(mismatched.run()), baseline);
}

TEST(SharedTables, FingerprintIgnoresCachePresence)
{
    Server::Config a;
    a.memBytes = 128_MiB;
    a.seed = 7;
    Server::Config b = a;
    b.sharedTables = SharedFleetTables::make(b.memBytes);
    EXPECT_EQ(serverConfigFingerprint(a),
              serverConfigFingerprint(b));
}

// ---------------------------------------------------------------
// Scale tier: thread identity, snapshots, faults
// ---------------------------------------------------------------

/** Fig11-shaped population at the scale tier (the bench's shape,
 * sized for a unit test). */
Fleet::Config
scaleTierFleet(bool contiguitas, unsigned servers)
{
    Fleet::Config config;
    config.servers = servers;
    config.memBytes = 64_MiB;
    config.policy.name = contiguitas ? "contiguitas" : "vanilla";
    config.minUptimeSec = 2.0;
    config.maxUptimeSec = 5.0;
    config.minIntensity = 0.7;
    config.maxIntensity = 1.3;
    config.prefragmentFrac = 0.25;
    config.streamScans = true;
    config.seed = 0x5ca1e ^ (contiguitas ? 1 : 0);
    return config;
}

class FleetScaleTier : public ::testing::Test
{
  protected:
    FleetScaleTier() { faultInjector().reset(); }
    ~FleetScaleTier() override { faultInjector().reset(); }
};

TEST_F(FleetScaleTier, BitIdenticalAcrossThreadCounts)
{
    for (const bool contiguitas : {false, true}) {
        std::vector<std::uint64_t> baseline;
        std::vector<std::uint64_t> baselineQuantiles;
        for (const unsigned threads : {1u, 4u, 8u}) {
            Fleet::Config config = scaleTierFleet(contiguitas, 24);
            config.threads = threads;
            Fleet fleet(config);
            const auto scans = scansBits(fleet.run());
            std::vector<std::uint64_t> quantiles;
            for (const double f : {0.0, 0.25, 0.5, 0.9, 1.0}) {
                quantiles.push_back(
                    bits(fleet.scanSinks().freeContiguity2m
                             .quantile(f)));
                quantiles.push_back(
                    bits(fleet.scanSinks().uptimeSec.quantile(f)));
            }
            if (baseline.empty()) {
                baseline = scans;
                baselineQuantiles = quantiles;
                EXPECT_FALSE(baseline.empty());
            } else {
                EXPECT_EQ(scans, baseline)
                    << "scan drift at " << threads << " threads, ctg="
                    << contiguitas;
                EXPECT_EQ(quantiles, baselineQuantiles)
                    << "streamed quantile drift at " << threads
                    << " threads";
            }
        }
    }
}

TEST_F(FleetScaleTier, EveryFaultSiteArmedStaysIdenticalAndAudited)
{
    // All 13 fault sites armed over the scale-tier population: the
    // runs must stay bit-identical across thread counts and the
    // fault evaluation/fire counters must match exactly.
    // The injector stream is pinned: boot-time allocations (kernel
    // text, NIC rings) fatal on an injected failure by design, so
    // like the other chaos suites this uses a seed whose fire
    // pattern lets every server boot. Forked per-task streams make
    // the pattern identical at every thread count either way.
    const auto runWithFaults = [](unsigned threads) {
        faultInjector().reset(0xbadc0de);
        for (unsigned i = 0; i < numFaultSites; ++i)
            faultInjector().arm(static_cast<FaultSite>(i),
                                FaultSpec::chance(0.02));
        Fleet::Config config = scaleTierFleet(true, 16);
        config.threads = threads;
        Fleet fleet(config);
        std::vector<std::uint64_t> record = scansBits(fleet.run());
        for (unsigned i = 0; i < numFaultSites; ++i) {
            const auto &s = faultInjector().siteStats(
                static_cast<FaultSite>(i));
            record.push_back(s.evaluations);
            record.push_back(s.fires);
        }
        faultInjector().reset();
        return record;
    };
    const auto baseline = runWithFaults(1);
    EXPECT_EQ(runWithFaults(4), baseline);
    EXPECT_EQ(runWithFaults(8), baseline);
}

TEST_F(FleetScaleTier, KiloServerSnapshotRoundTrip)
{
    // The 1k-server tier: checkpoint every server at its uptime
    // boundary, restore the whole population, and require the
    // restored run to be bit-identical to the straight-through run.
    // Small machines and short uptimes keep this inside unit-test
    // runtime while the population size stays at the tier the
    // fleet-scale work targets.
    const std::string dir =
        ::testing::TempDir() + "ctgsnap_fleet_scale_kilo";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    Fleet::Config config = scaleTierFleet(true, 1000);
    config.memBytes = 32_MiB;
    config.minUptimeSec = 1.0;
    config.maxUptimeSec = 2.0;
    config.extraUptimeSec = 1.0;

    Fleet straight(config);
    const auto straightBits = scansBits(straight.run());

    Fleet::Config ckptConfig = config;
    ckptConfig.checkpointDir = dir;
    Fleet checkpoint(ckptConfig);
    EXPECT_EQ(scansBits(checkpoint.run()), straightBits);
    EXPECT_TRUE(std::filesystem::exists(
        dir + "/" + snap::manifestFileName()));

    Fleet::Config restoreConfig = config;
    restoreConfig.restoreDir = dir;
    Fleet restored(restoreConfig);
    EXPECT_EQ(scansBits(restored.run()), straightBits);

    std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------
// Task arena (base/arena)
// ---------------------------------------------------------------

TEST(Arena, AlignmentAndOwnership)
{
    Arena arena;
    void *p = arena.allocate(24);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % Arena::minAlign,
              0u);
    EXPECT_TRUE(arena.owns(p));

    // Over-aligned requests must honor the requested alignment, not
    // just the default.
    void *q = arena.allocate(100, 64);
    ASSERT_NE(q, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(q) % 64, 0u);
    EXPECT_TRUE(arena.owns(q));

    int onStack = 0;
    EXPECT_FALSE(arena.owns(&onStack));
    EXPECT_GE(arena.bytesUsed(), 124u);
}

TEST(Arena, ResetConsolidatesToHighWaterSingleBlock)
{
    Arena arena;
    // Overflow the first block (1 MiB) so the arena grows, then
    // reset: the blocks must consolidate into one sized to the
    // high-water mark, and a same-sized refill must not grow again.
    constexpr std::size_t chunk = 64 * 1024;
    constexpr unsigned chunks = 40; // 2.5 MiB
    for (unsigned i = 0; i < chunks; ++i)
        ASSERT_NE(arena.allocate(chunk), nullptr);
    const std::uint64_t firstFill = arena.bytesUsed();
    EXPECT_GT(arena.blockCount(), 1u);
    EXPECT_GE(arena.highWaterBytes(), firstFill);

    arena.reset();
    EXPECT_EQ(arena.bytesUsed(), 0u);
    EXPECT_EQ(arena.blockCount(), 1u);
    EXPECT_GE(arena.highWaterBytes(), firstFill);

    for (unsigned i = 0; i < chunks; ++i)
        ASSERT_NE(arena.allocate(chunk), nullptr);
    EXPECT_EQ(arena.blockCount(), 1u)
        << "steady-state refill must fit the consolidated block";
    arena.reset();
}

TEST(Arena, ScopeRoutesOperatorNewAndSuspendRestoresHeap)
{
    Arena arena;
    EXPECT_EQ(activeArena(), nullptr);
    {
        const ArenaScope scope(arena);
        EXPECT_EQ(activeArena(), &arena);

        char *p = new char[100];
        EXPECT_TRUE(arena.owns(p));

        struct alignas(64) Wide
        {
            char bytes[64];
        };
        Wide *w = new Wide;
        EXPECT_TRUE(arena.owns(w));
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(w) % 64, 0u);

        char *heap = nullptr;
        {
            const ArenaSuspend off;
            EXPECT_EQ(activeArena(), nullptr);
            heap = new char[100];
            EXPECT_FALSE(arena.owns(heap));
        }
        EXPECT_EQ(activeArena(), &arena);

        // Arena-owned deletes are no-op frees; the heap pointer made
        // under the suspend goes back to the host heap as usual.
        delete w;
        delete[] p;
        delete[] heap;
    }
    EXPECT_EQ(activeArena(), nullptr);
    arena.reset();
}

// ---------------------------------------------------------------
// Pooled server slots: bit-identical to fresh construction
// ---------------------------------------------------------------

/** Everything observable about a span event except wallUs (wall
 * clock is explicitly non-deterministic) — names and arg keys by
 * string value, so events that crossed a process boundary compare
 * equal to in-process ones. */
std::string
eventRecord(const spans::Event &e)
{
    std::string out;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%u|%u|%s|%llu|%llu|%llu|%llu|%u|%u",
                  static_cast<unsigned>(e.phase),
                  static_cast<unsigned>(e.flag), e.name,
                  static_cast<unsigned long long>(e.id),
                  static_cast<unsigned long long>(e.parent),
                  static_cast<unsigned long long>(e.ts),
                  static_cast<unsigned long long>(e.tick), e.stream,
                  static_cast<unsigned>(e.nargs));
    out += buf;
    for (unsigned i = 0; i < e.nargs; ++i) {
        std::snprintf(buf, sizeof(buf), "|%s=%lld", e.args[i].key,
                      static_cast<long long>(e.args[i].value));
        out += buf;
    }
    return out;
}

/** Per-server span events of the last run, in collection order
 * (stream 0 — the main thread's fleet phase spans — excluded, since
 * shard children cannot ship those). */
std::vector<std::string>
serverSpanRecords()
{
    std::vector<std::string> out;
    for (const spans::Event &e : spans::collectedEvents())
        if (e.stream != 0)
            out.push_back(eventRecord(e));
    return out;
}

TEST_F(FleetScaleTier, PooledSlotsMatchFreshConstructionBitExact)
{
    // The pool is pure mechanism: reusing a worker's arena-backed
    // ServerSlot across tasks must not move a bit of the scans, the
    // streamed quantiles, or the span event streams relative to
    // constructing every server from the host heap — at any thread
    // count.
    for (const bool contiguitas : {false, true}) {
        std::vector<std::uint64_t> baseline;
        std::vector<std::string> baselineSpans;
        struct Variant
        {
            bool pooled;
            unsigned threads;
        };
        for (const Variant v : {Variant{false, 1}, Variant{true, 1},
                                Variant{true, 4}, Variant{true, 8}}) {
            spans::resetForTest();
            spans::enableAll();
            Fleet::Config config = scaleTierFleet(contiguitas, 16);
            config.threads = v.threads;
            config.slotPool = v.pooled;
            Fleet fleet(config);
            std::vector<std::uint64_t> record =
                scansBits(fleet.run());
            for (const double f : {0.0, 0.25, 0.5, 0.9, 1.0}) {
                record.push_back(bits(
                    fleet.scanSinks().freeContiguity2m.quantile(f)));
                record.push_back(bits(
                    fleet.scanSinks().unmovableBlocks2m.quantile(f)));
            }
            const std::vector<std::string> spanRecords =
                serverSpanRecords();
            spans::resetForTest();
            if (baseline.empty()) {
                baseline = record;
                baselineSpans = spanRecords;
                EXPECT_FALSE(baseline.empty());
                EXPECT_FALSE(baselineSpans.empty());
            } else {
                EXPECT_EQ(record, baseline)
                    << "pooled=" << v.pooled << " threads="
                    << v.threads << " ctg=" << contiguitas;
                EXPECT_EQ(spanRecords, baselineSpans)
                    << "span drift, pooled=" << v.pooled
                    << " threads=" << v.threads;
            }
        }
    }
}

TEST_F(FleetScaleTier, PooledSlotsMatchFreshWithEveryFaultSiteArmed)
{
    // Same contract under chaos: all 13 fault sites armed, pooled
    // runs at several thread counts against the fresh-construction
    // baseline — scans and the exact evaluation/fire counters.
    const auto runVariant = [](bool pooled, unsigned threads) {
        faultInjector().reset(0xbadc0de);
        for (unsigned i = 0; i < numFaultSites; ++i)
            faultInjector().arm(static_cast<FaultSite>(i),
                                FaultSpec::chance(0.02));
        Fleet::Config config = scaleTierFleet(true, 12);
        config.threads = threads;
        config.slotPool = pooled;
        Fleet fleet(config);
        std::vector<std::uint64_t> record = scansBits(fleet.run());
        for (unsigned i = 0; i < numFaultSites; ++i) {
            const auto &s = faultInjector().siteStats(
                static_cast<FaultSite>(i));
            record.push_back(s.evaluations);
            record.push_back(s.fires);
        }
        faultInjector().reset();
        return record;
    };
    const auto baseline = runVariant(false, 1);
    EXPECT_EQ(runVariant(true, 1), baseline);
    EXPECT_EQ(runVariant(true, 4), baseline);
    EXPECT_EQ(runVariant(true, 8), baseline);
}

// ---------------------------------------------------------------
// Process sharding: bit-identical to single-process
// ---------------------------------------------------------------

/** Sink fingerprint: count, mean and a quantile ladder of every
 * streamed histogram, as bits. */
std::vector<std::uint64_t>
sinkBits(const Fleet::ScanSinks &sinks)
{
    std::vector<std::uint64_t> out;
    const OnlineHistogram *hists[] = {
        &sinks.freeContiguity2m, &sinks.unmovableBlocks2m,
        &sinks.unmovablePageRatio, &sinks.uptimeSec};
    for (const OnlineHistogram *h : hists) {
        out.push_back(h->count());
        out.push_back(bits(h->mean()));
        for (const double f : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0})
            out.push_back(bits(h->quantile(f)));
    }
    return out;
}

TEST_F(FleetScaleTier, ShardedRunMatchesSingleProcessBitExact)
{
    // Forking the population across worker processes is pure
    // mechanism too: scans, streamed sinks and per-server span
    // streams must merge back bit-identical to the unsharded run,
    // and the shard ranges must partition the population exactly.
    for (const bool contiguitas : {false, true}) {
        Fleet::Config config = scaleTierFleet(contiguitas, 22);
        config.threads = 2;

        spans::resetForTest();
        spans::enableAll();
        Fleet single(config);
        auto singleBits = scansBits(single.run());
        const auto singleSinks = sinkBits(single.scanSinks());
        const auto singleSpans = serverSpanRecords();
        spans::resetForTest();

        spans::enableAll();
        const ShardRunResult sharded =
            runShardedFleet(config, 3);
        const auto shardSpans = serverSpanRecords();
        spans::resetForTest();

        EXPECT_EQ(scansBits(sharded.scans), singleBits)
            << "ctg=" << contiguitas;
        EXPECT_EQ(sinkBits(sharded.sinks), singleSinks);
        EXPECT_EQ(shardSpans, singleSpans);

        ASSERT_EQ(sharded.shards.size(), 3u);
        unsigned next = 0;
        for (const ShardStats &s : sharded.shards) {
            EXPECT_EQ(s.begin, next);
            EXPECT_GT(s.end, s.begin);
            next = s.end;
        }
        EXPECT_EQ(next, config.servers);
    }
}

TEST_F(FleetScaleTier, ShardedRunMatchesSingleProcessWithFaultsArmed)
{
    // Chaos across the pipe: with every fault site armed, the shard
    // children inherit the armed injector through fork, evaluate
    // their per-task forks exactly as the single process would, and
    // ship the counter deltas home — the parent's injector must end
    // with identical evaluation/fire counts.
    const auto record = [](std::vector<std::uint64_t> scans) {
        for (unsigned i = 0; i < numFaultSites; ++i) {
            const auto &s = faultInjector().siteStats(
                static_cast<FaultSite>(i));
            scans.push_back(s.evaluations);
            scans.push_back(s.fires);
        }
        faultInjector().reset();
        return scans;
    };
    const auto arm = [] {
        faultInjector().reset(0xbadc0de);
        for (unsigned i = 0; i < numFaultSites; ++i)
            faultInjector().arm(static_cast<FaultSite>(i),
                                FaultSpec::chance(0.02));
    };
    Fleet::Config config = scaleTierFleet(true, 18);
    config.threads = 1;

    arm();
    Fleet single(config);
    const auto baseline = record(scansBits(single.run()));

    arm();
    const ShardRunResult sharded = runShardedFleet(config, 3);
    EXPECT_EQ(record(scansBits(sharded.scans)), baseline);
}

TEST_F(FleetScaleTier, ShardedCheckpointMatchesSingleProcessBytes)
{
    // A sharded run must leave behind the same checkpoint directory
    // a single-process run writes: every snapshot image and the one
    // manifest (written by the parent from the shards' merged
    // entries), byte for byte.
    namespace fs = std::filesystem;
    const std::string singleDir =
        ::testing::TempDir() + "ctgsnap_shard_single";
    const std::string shardDir =
        ::testing::TempDir() + "ctgsnap_shard_forked";
    fs::remove_all(singleDir);
    fs::remove_all(shardDir);
    fs::create_directories(singleDir);
    fs::create_directories(shardDir);

    Fleet::Config config = scaleTierFleet(true, 12);
    config.memBytes = 32_MiB;
    config.threads = 1;

    Fleet::Config singleConfig = config;
    singleConfig.checkpointDir = singleDir;
    Fleet single(singleConfig);
    const auto singleBits = scansBits(single.run());

    Fleet::Config shardConfig = config;
    shardConfig.checkpointDir = shardDir;
    const ShardRunResult sharded = runShardedFleet(shardConfig, 3);
    EXPECT_EQ(scansBits(sharded.scans), singleBits);

    const auto slurp = [](const fs::path &p) {
        std::string out;
        if (FILE *f = std::fopen(p.c_str(), "rb")) {
            char buf[4096];
            std::size_t n;
            while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
                out.append(buf, n);
            std::fclose(f);
        }
        return out;
    };
    std::vector<std::string> names;
    for (const auto &entry : fs::directory_iterator(singleDir))
        names.push_back(entry.path().filename().string());
    std::sort(names.begin(), names.end());
    EXPECT_GT(names.size(), 1u);
    unsigned compared = 0;
    for (const std::string &name : names) {
        ASSERT_TRUE(fs::exists(fs::path(shardDir) / name))
            << "sharded run missing " << name;
        EXPECT_EQ(slurp(fs::path(shardDir) / name),
                  slurp(fs::path(singleDir) / name))
            << "checkpoint file differs: " << name;
        ++compared;
    }
    EXPECT_EQ(compared, names.size());
    ASSERT_TRUE(std::find(names.begin(), names.end(),
                          snap::manifestFileName()) != names.end());

    fs::remove_all(singleDir);
    fs::remove_all(shardDir);
}

// ---------------------------------------------------------------
// Coarse (scale) stepping
// ---------------------------------------------------------------

TEST_F(FleetScaleTier, CoarseStepIsDeterministicAndFingerprinted)
{
    // Coarse stepping deliberately changes results (bigger workload
    // segments between scan points), so it must be deterministic
    // run-to-run, it must actually differ from fine stepping, and
    // both fingerprints must carry it — a restore across stepping
    // modes has to be refused, not silently mixed.
    Fleet::Config fine = scaleTierFleet(true, 8);
    fine.coarseStep = false;
    Fleet::Config coarse = fine;
    coarse.coarseStep = true;

    Fleet coarseA(coarse);
    const auto coarseBits = scansBits(coarseA.run());
    Fleet coarseB(coarse);
    EXPECT_EQ(scansBits(coarseB.run()), coarseBits);

    Fleet fineFleet(fine);
    EXPECT_NE(scansBits(fineFleet.run()), coarseBits);

    EXPECT_NE(fleetConfigFingerprint(fine),
              fleetConfigFingerprint(coarse));
    Server::Config sfine;
    sfine.coarseStep = false;
    Server::Config scoarse;
    scoarse.coarseStep = true;
    EXPECT_NE(serverConfigFingerprint(sfine),
              serverConfigFingerprint(scoarse));
}

TEST_F(FleetScaleTier, CoarseStepPreservesConfinementAndCdfShape)
{
    // The fig11 regression under coarsening: Contiguitas must still
    // confine unmovables (more free 2M contiguity, fewer unmovable
    // blocks than stock Linux), and the scan CDFs must keep their
    // shape — monotone quantiles with real spread, not a collapsed
    // point mass.
    const auto runSystem = [](bool contiguitas) {
        Fleet::Config config = scaleTierFleet(contiguitas, 24);
        config.coarseStep = true;
        Fleet fleet(config);
        fleet.run();
        return fleet.scanSinks();
    };
    const Fleet::ScanSinks vanilla = runSystem(false);
    const Fleet::ScanSinks ctg = runSystem(true);

    EXPECT_GT(ctg.freeContiguity2m.mean(),
              vanilla.freeContiguity2m.mean());
    EXPECT_GT(ctg.freeContiguity2m.quantile(0.5),
              vanilla.freeContiguity2m.quantile(0.5));
    EXPECT_LT(ctg.unmovableBlocks2m.mean(),
              vanilla.unmovableBlocks2m.mean());

    for (const Fleet::ScanSinks *s : {&vanilla, &ctg}) {
        double prev = s->freeContiguity2m.quantile(0.0);
        for (const double f : {0.25, 0.5, 0.75, 1.0}) {
            const double q = s->freeContiguity2m.quantile(f);
            EXPECT_GE(q, prev);
            prev = q;
        }
        EXPECT_GT(s->freeContiguity2m.quantile(1.0),
                  s->freeContiguity2m.quantile(0.0))
            << "coarse stepping collapsed the population spread";
    }
}

TEST_F(FleetScaleTier, PeakRssGaugeReportsProcessFootprint)
{
    Fleet::Config config = scaleTierFleet(false, 4);
    StatRegistry registry;
    Fleet fleet(config);
    fleet.attachTelemetry(registry);
    fleet.run();
    const Stat *rss = registry.find("fleet.peak_rss_mb");
    ASSERT_NE(rss, nullptr);
    // getrusage is available on every platform CI runs; a zero
    // reading would mean the gauge went dead.
    EXPECT_GT(rss->value(), 0.0);
}

} // namespace
} // namespace ctg
