/**
 * @file
 * HugeTLB pool tests: boot reservations, acquire/release, dynamic
 * growth on clean vs fragmented machines, and the reservation-
 * survives-fragmentation property that motivates boot-time pools.
 */

#include <gtest/gtest.h>

#include "base/units.hh"
#include "contiguitas/policy.hh"
#include "kernel/hugetlb.hh"
#include "workloads/fragmenter.hh"

namespace ctg
{
namespace
{

KernelConfig
bigConfig()
{
    KernelConfig config;
    config.memBytes = 3_GiB;
    config.kernelTextBytes = 4_MiB;
    return config;
}

TEST(HugeTlb, BootReservationProvidesPages)
{
    Kernel kernel(bigConfig());
    HugeTlbPool::Config config;
    config.reserve2m = 16;
    config.reserve1g = 1;
    HugeTlbPool pool(kernel, config);
    EXPECT_EQ(pool.total2m(), 16u);
    EXPECT_EQ(pool.free2m(), 16u);
    EXPECT_EQ(pool.total1g(), 1u);

    const Pfn huge = pool.acquire2m();
    ASSERT_NE(huge, invalidPfn);
    EXPECT_EQ(huge % pagesPerHuge, 0u);
    EXPECT_EQ(pool.free2m(), 15u);
    pool.release2m(huge);
    EXPECT_EQ(pool.free2m(), 16u);

    const Pfn giant = pool.acquire1g();
    ASSERT_NE(giant, invalidPfn);
    EXPECT_EQ(giant % pagesPerGiga, 0u);
    pool.release1g(giant);
}

TEST(HugeTlb, EmptyPoolReturnsInvalid)
{
    Kernel kernel(bigConfig());
    HugeTlbPool pool(kernel, {});
    EXPECT_EQ(pool.acquire2m(), invalidPfn);
    EXPECT_EQ(pool.acquire1g(), invalidPfn);
}

TEST(HugeTlb, ShrinkReturnsMemory)
{
    Kernel kernel(bigConfig());
    const std::uint64_t free_before =
        kernel.policy().freeUserPages();
    HugeTlbPool pool(kernel, {});
    ASSERT_EQ(pool.grow2m(32), 32u);
    EXPECT_EQ(pool.shrink2m(32), 32u);
    EXPECT_EQ(pool.total2m(), 0u);
    EXPECT_EQ(kernel.policy().freeUserPages(), free_before);
}

TEST(HugeTlb, DynamicGrowthFailsOnFragmentedVanilla)
{
    Kernel kernel(bigConfig());
    Fragmenter fragmenter(kernel, {}, 3);
    fragmenter.run();
    HugeTlbPool pool(kernel, {});
    // 1 GB growth: impossible — every window holds unmovable pages.
    EXPECT_EQ(pool.grow1g(1), 0u);
    // 2 MB growth harvests only the few clean pageblocks (~3% of
    // 1536 on this machine) and then dries up completely.
    const unsigned first = pool.grow2m(256);
    EXPECT_LT(first, 64u);
    EXPECT_EQ(pool.grow2m(16), 0u);
}

TEST(HugeTlb, DynamicGrowthSucceedsUnderContiguitas)
{
    KernelConfig kc = bigConfig();
    ContiguitasConfig cc;
    cc.region.initialUnmovablePages = (128_MiB) / pageBytes;
    Kernel kernel(kc, ContiguitasPolicy::factory(cc));
    Fragmenter fragmenter(kernel, {}, 3);
    fragmenter.run();
    // The same fragmentation process ran, but its unmovable residue
    // is confined: the pool can still grow, even to 1 GB.
    HugeTlbPool pool(kernel, {});
    // Gigantic first: pool pages themselves are unowned and would
    // block a later contig-range evacuation (hugetlb pages are not
    // migratable in the 5.x kernels the paper builds on).
    EXPECT_EQ(pool.grow1g(1), 1u);
    EXPECT_EQ(pool.grow2m(64), 64u);
}

TEST(HugeTlb, BootOverReservationIsFatal)
{
    KernelConfig kc;
    kc.memBytes = 512_MiB;
    kc.kernelTextBytes = 4_MiB;
    Kernel kernel(kc);
    HugeTlbPool::Config config;
    config.reserve1g = 1; // machine is smaller than 1 GB
    EXPECT_THROW(HugeTlbPool(kernel, config), FatalError);
}

TEST(HugeTlb, ReservationSurvivesFragmentation)
{
    // Reserve at boot, then fragment the machine: the reserved pages
    // are untouched and still mappable — the property that makes
    // administrators reserve early.
    Kernel kernel(bigConfig());
    HugeTlbPool::Config config;
    config.reserve2m = 8;
    config.reserve1g = 1;
    HugeTlbPool pool(kernel, config);
    {
        Fragmenter fragmenter(kernel, {}, 3);
        fragmenter.run();
        EXPECT_EQ(pool.free2m(), 8u);
        EXPECT_EQ(pool.free1g(), 1u);
        const Pfn giant = pool.acquire1g();
        ASSERT_NE(giant, invalidPfn);
        pool.release1g(giant);
    }
}

} // namespace
} // namespace ctg
