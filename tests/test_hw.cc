/**
 * @file
 * Hardware model tests: cache array, coherence protocol, TLBs, page
 * walker, IOMMU, shootdown timing, and the area model.
 */

#include <gtest/gtest.h>

#include <unordered_map>

#include "base/rng.hh"
#include "base/units.hh"
#include "hw/areamodel.hh"
#include "hw/system.hh"

namespace ctg
{
namespace
{

TEST(CacheArray, InsertLookupInvalidate)
{
    CacheArray cache(32 * 1024, 8, "t");
    const Addr line = 0x1000;
    EXPECT_EQ(cache.lookup(line), nullptr);
    CacheEntry &e = cache.insert(line, nullptr);
    e.value = 7;
    ASSERT_NE(cache.lookup(line), nullptr);
    EXPECT_EQ(cache.lookup(line)->value, 7u);
    EXPECT_TRUE(cache.invalidate(line));
    EXPECT_EQ(cache.lookup(line), nullptr);
}

TEST(CacheArray, LruEvictsOldest)
{
    // 8-way, line 64B: set count = 32KB/64/8 = 64 sets. Fill one set
    // with 9 lines mapping to set 0.
    CacheArray cache(32 * 1024, 8, "t");
    const Addr stride = 64 * 64; // same set every 64 lines
    for (int i = 0; i < 8; ++i)
        cache.insert(stride * static_cast<Addr>(i), nullptr);
    // Touch line 0 so line at stride*1 is LRU.
    ASSERT_NE(cache.lookup(0), nullptr);
    CacheEntry evicted;
    cache.insert(stride * 8, &evicted);
    ASSERT_TRUE(evicted.valid);
    EXPECT_EQ(evicted.lineAddr, stride * 1);
}

class MemHierarchyTest : public ::testing::Test
{
  protected:
    MemHierarchyTest()
        : mem(HwConfig{})
    {}

    MemHierarchy mem;
};

TEST_F(MemHierarchyTest, ReadReturnsMemoryValue)
{
    mem.pokeMemory(0x4000, 42);
    const auto out = mem.access(0, 0x4000, false);
    EXPECT_EQ(out.value, 42u);
    EXPECT_TRUE(out.servedFromDram);
}

TEST_F(MemHierarchyTest, SecondReadHitsL1)
{
    mem.pokeMemory(0x4000, 42);
    const auto miss = mem.access(0, 0x4000, false);
    const auto hit = mem.access(0, 0x4000, false);
    EXPECT_LT(hit.latency, miss.latency);
    EXPECT_EQ(hit.latency, mem.config().l1Lat);
}

TEST_F(MemHierarchyTest, WriteVisibleToOtherCore)
{
    mem.access(0, 0x8000, true, 1234);
    const auto out = mem.access(3, 0x8000, false);
    EXPECT_EQ(out.value, 1234u);
}

TEST_F(MemHierarchyTest, WriteInvalidatesSharers)
{
    mem.pokeMemory(0xc000, 5);
    mem.access(0, 0xc000, false);
    mem.access(1, 0xc000, false);
    // Core 2 writes; cores 0 and 1 must see the new value (their
    // copies were invalidated, not silently stale).
    mem.access(2, 0xc000, true, 99);
    EXPECT_EQ(mem.access(0, 0xc000, false).value, 99u);
    EXPECT_EQ(mem.access(1, 0xc000, false).value, 99u);
}

TEST_F(MemHierarchyTest, DeviceWriteCoherentWithCores)
{
    mem.access(0, 0x10000, true, 7);
    mem.deviceAccess(0x10000, true, 8);
    EXPECT_EQ(mem.access(0, 0x10000, false).value, 8u);
}

TEST_F(MemHierarchyTest, DeviceReadSeesModifiedLine)
{
    mem.access(5, 0x14000, true, 77);
    EXPECT_EQ(mem.deviceAccess(0x14000, false).value, 77u);
}

/** Random concurrent traffic against a reference model. */
class CoherenceFuzz : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(CoherenceFuzz, MatchesReferenceModel)
{
    MemHierarchy mem{HwConfig{}};
    Rng rng(GetParam());
    std::unordered_map<Addr, std::uint64_t> reference;

    // 64 lines across several pages ensures both sharing and
    // eviction traffic.
    std::vector<Addr> lines;
    for (int i = 0; i < 64; ++i)
        lines.push_back(static_cast<Addr>(rng.below(1u << 20)) *
                        lineBytes);

    for (int step = 0; step < 20000; ++step) {
        const Addr line = lines[rng.below(lines.size())];
        const auto core = static_cast<CoreId>(rng.below(8));
        if (rng.chance(0.4)) {
            const std::uint64_t v = rng.next();
            mem.access(core, line, true, v);
            reference[line] = v;
        } else {
            const auto out = mem.access(core, line, false);
            const auto it = reference.find(line);
            const std::uint64_t expected =
                it == reference.end() ? 0 : it->second;
            ASSERT_EQ(out.value, expected)
                << "core " << core << " line " << std::hex << line;
        }
    }
    // Authoritative values must match the reference at the end.
    for (const Addr line : lines) {
        const auto it = reference.find(line);
        const std::uint64_t expected =
            it == reference.end() ? 0 : it->second;
        EXPECT_EQ(mem.authoritativeValue(line), expected);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoherenceFuzz,
                         ::testing::Values(11, 22, 33, 44));

TEST(TlbTest, InsertLookupInvalidate)
{
    Tlb tlb(64, 4);
    tlb.insert(100, 555, 0);
    ASSERT_NE(tlb.lookup(100), nullptr);
    EXPECT_EQ(tlb.lookup(100)->pfnHead, 555u);
    EXPECT_TRUE(tlb.invalidate(100));
    EXPECT_EQ(tlb.lookup(100), nullptr);
}

TEST(TlbTest, HugeEntryCoversWholeRange)
{
    Tlb tlb(64, 4);
    tlb.insert(0, 4096, hugeOrder);
    const Tlb::Entry *entry = tlb.lookup(300);
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->order, hugeOrder);
    EXPECT_TRUE(tlb.invalidate(17));
    EXPECT_EQ(tlb.lookup(300), nullptr);
}

TEST(TlbTest, CapacityEviction)
{
    Tlb tlb(8, 2);
    // Overfill one set: entries map set by vpn low bits (4 sets).
    for (Vpn v = 0; v < 3; ++v)
        tlb.insert(v * 4, 100 + v, 0);
    // Two of the three conflict-mapped entries survive.
    int present = 0;
    for (Vpn v = 0; v < 3; ++v)
        present += tlb.lookup(v * 4) != nullptr;
    EXPECT_EQ(present, 2);
}

class MmuTest : public ::testing::Test
{
  protected:
    MmuTest()
        : kernel(makeConfig()), tables(kernel), hw(HwConfig{})
    {}

    static KernelConfig
    makeConfig()
    {
        KernelConfig config;
        config.memBytes = 256_MiB;
        config.kernelTextBytes = 2_MiB;
        return config;
    }

    Kernel kernel;
    PageTables tables;
    HwSystem hw;
};

TEST_F(MmuTest, WalkThenTlbHit)
{
    ASSERT_TRUE(tables.map(0x42, 0x1000, 0));
    Mmu &mmu = hw.mmu(0);
    const auto first = mmu.translate(0x42ULL << pageShift, tables);
    ASSERT_TRUE(first.valid);
    EXPECT_TRUE(first.walked);
    EXPECT_EQ(first.paddr, Addr{0x1000} << pageShift);

    const auto second = mmu.translate(0x42ULL << pageShift, tables);
    ASSERT_TRUE(second.valid);
    EXPECT_FALSE(second.walked);
    EXPECT_EQ(second.latency, hw.config().l1TlbLat);
}

TEST_F(MmuTest, HugePageWalkIsShorter)
{
    ASSERT_TRUE(tables.map(0, 0x10000, hugeOrder));
    ASSERT_TRUE(tables.map(pagesPerGiga, 0x1, 0));
    Mmu &mmu = hw.mmu(0);
    const auto huge = mmu.translate(0, tables);
    mmu.flushAll();
    const auto base = mmu.translate(
        Addr{pagesPerGiga} << pageShift, tables);
    ASSERT_TRUE(huge.valid && base.valid);
    EXPECT_LT(huge.walkDepth, base.walkDepth);
}

TEST_F(MmuTest, InvlpgDropsTranslation)
{
    ASSERT_TRUE(tables.map(0x42, 0x1000, 0));
    Mmu &mmu = hw.mmu(0);
    mmu.translate(0x42ULL << pageShift, tables);
    const Cycles cost = mmu.invlpg(0x42);
    EXPECT_EQ(cost, hw.config().invlpgCost);
    const auto after = mmu.translate(0x42ULL << pageShift, tables);
    EXPECT_TRUE(after.walked);
}

TEST_F(MmuTest, PwcAcceleratesNeighborWalks)
{
    ASSERT_TRUE(tables.map(0x100, 0x1000, 0));
    ASSERT_TRUE(tables.map(0x101, 0x1001, 0));
    Mmu &mmu = hw.mmu(0);
    const auto first = mmu.translate(0x100ULL << pageShift, tables);
    // Neighbor shares all upper levels: the PWC should cut the walk
    // to a single PTE access.
    const auto second = mmu.translate(0x101ULL << pageShift, tables);
    ASSERT_TRUE(first.valid && second.valid);
    EXPECT_EQ(first.walkDepth, 4u);
    EXPECT_EQ(second.walkDepth, 1u);
}

TEST_F(MmuTest, IommuDmaTranslatesAndCaches)
{
    ASSERT_TRUE(tables.map(0x77, 0x2000, 0));
    Iommu &iommu = hw.iommu();
    const auto first =
        iommu.dmaAccess(0x77ULL << pageShift, tables, true, 5);
    ASSERT_TRUE(first.valid);
    EXPECT_TRUE(first.walked);
    const auto second =
        iommu.dmaAccess(0x77ULL << pageShift, tables, false);
    ASSERT_TRUE(second.valid);
    EXPECT_FALSE(second.walked);
    EXPECT_EQ(second.value, 5u);
}

TEST_F(MmuTest, IommuQueuedInvalidationApplies)
{
    ASSERT_TRUE(tables.map(0x77, 0x2000, 0));
    Iommu &iommu = hw.iommu();
    iommu.dmaAccess(0x77ULL << pageShift, tables, false);
    iommu.queueInvalidate(0x77);
    EXPECT_EQ(iommu.pendingInvalidations(), 1u);
    const auto after =
        iommu.dmaAccess(0x77ULL << pageShift, tables, false);
    EXPECT_TRUE(after.walked); // IOTLB entry was dropped
    EXPECT_EQ(iommu.pendingInvalidations(), 0u);
}

TEST(ShootdownTiming, ClassicScalesLinearly)
{
    HwSystem hw;
    const Cycles one = hw.shootdown().classicShootdownCost(1);
    const Cycles four = hw.shootdown().classicShootdownCost(4);
    const Cycles eight = hw.shootdown().classicShootdownCost(8);
    EXPECT_EQ(four, 4 * one);
    EXPECT_EQ(eight, 8 * one);
}

TEST(AreaModel, MatchesPaperNumbers)
{
    const SramEstimate est =
        estimateFaSram(16, migrationEntryBits, 22.0);
    // Paper: 0.0038 mm^2, 0.0017 nJ, 0.64 mW at 22 nm.
    EXPECT_NEAR(est.areaMm2, 0.0038, 0.0008);
    EXPECT_NEAR(est.energyPerAccessNj, 0.0017, 0.0004);
    EXPECT_NEAR(est.leakageMw, 0.64, 0.15);
    // Negligible relative to a core.
    EXPECT_LT(est.areaMm2 / coreAreaMm2At22nm, 0.0005);
}

TEST(AreaModel, ScalesWithTechNode)
{
    const SramEstimate n22 = estimateFaSram(16, migrationEntryBits,
                                            22.0);
    const SramEstimate n7 = estimateFaSram(16, migrationEntryBits,
                                           7.0);
    EXPECT_LT(n7.areaMm2, n22.areaMm2);
}

} // namespace
} // namespace ctg
