/**
 * @file
 * Deeper hardware-protocol tests: LLC inclusivity under eviction
 * pressure, migration-table saturation and reuse, mid-copy Clear,
 * DMA traffic through redirection, lazy TLB invalidation after a
 * Contiguitas migration, and ring-latency properties.
 */

#include <gtest/gtest.h>

#include <vector>

#include "base/rng.hh"
#include "base/units.hh"
#include "hw/system.hh"
#include "kernel/churn.hh"

namespace ctg
{
namespace
{

Addr
lineAddr(Pfn page, unsigned idx)
{
    return pfnToAddr(page) + static_cast<Addr>(idx) * lineBytes;
}

TEST(LlcInclusion, EvictionWritesBackAndInvalidatesPrivates)
{
    MemHierarchy mem{HwConfig{}};
    // Dirty a line in core 0's caches.
    const Addr victim = 0x123440;
    mem.access(0, victim, true, 0xdead);

    // Hammer the same LLC slice+set with enough distinct lines to
    // evict the victim from the (16-way) slice.
    const unsigned slice = mem.sliceOf(victim);
    const std::uint64_t sets =
        (HwConfig{}.llcSliceBytes / lineBytes) / HwConfig{}.llcAssoc;
    const std::uint64_t set =
        (victim >> lineShift) & (sets - 1);
    unsigned planted = 0;
    for (Addr candidate = 0; planted < 64;
         candidate += lineBytes) {
        if (candidate == victim)
            continue;
        if (mem.sliceOf(candidate) != slice)
            continue;
        if (((candidate >> lineShift) & (sets - 1)) != set)
            continue;
        mem.access(1, candidate, false);
        ++planted;
    }
    // Whatever happened, the dirty data must never be lost.
    EXPECT_EQ(mem.access(2, victim, false).value, 0xdeadu);
    EXPECT_GT(mem.stats().writebacks, 0u);
}

TEST(MigrationTableSaturation, SixteenConcurrentThenReuse)
{
    HwSystem hw;
    std::vector<Pfn> srcs;
    unsigned done = 0;
    for (Pfn i = 0; i < 16; ++i) {
        ChwEngine::Descriptor desc;
        desc.src = 0x1000 + i;
        desc.dst = 0x9000 + i;
        desc.mode = ChwMode::Noncacheable;
        desc.onComplete = [&done] { ++done; };
        ASSERT_TRUE(hw.chw().submitMigrate(desc)) << i;
        srcs.push_back(desc.src);
    }
    // Table is full now.
    ChwEngine::Descriptor extra;
    extra.src = 0x5000;
    extra.dst = 0x6000;
    EXPECT_FALSE(hw.chw().submitMigrate(extra));
    EXPECT_EQ(hw.mem().migrationTable().occupancy(), 16u);

    hw.drain();
    EXPECT_EQ(done, 16u);
    for (const Pfn src : srcs)
        hw.chw().clear(src);
    EXPECT_EQ(hw.mem().migrationTable().occupancy(), 0u);
    // Room again.
    EXPECT_TRUE(hw.chw().submitMigrate(extra));
    hw.drain();
    hw.chw().clear(extra.src);
}

TEST(MidCopyClear, StopsEngineQuietly)
{
    HwSystem hw;
    ChwEngine::Descriptor desc;
    desc.src = 0x300;
    desc.dst = 0x700;
    desc.mode = ChwMode::Noncacheable;
    bool completed = false;
    desc.onComplete = [&completed] { completed = true; };
    ASSERT_TRUE(hw.chw().submitMigrate(desc));
    for (int i = 0; i < 10; ++i)
        hw.eventq().step();
    ASSERT_TRUE(hw.chw().migrating(0x300));
    hw.chw().clear(0x300);
    EXPECT_FALSE(hw.chw().migrating(0x300));
    hw.drain(); // pending copy events must exit without effect
    EXPECT_FALSE(completed);
    EXPECT_EQ(hw.mem().migrationTable().occupancy(), 0u);
}

TEST(DmaRedirection, DeviceTrafficFollowsPtr)
{
    HwSystem hw;
    for (unsigned i = 0; i < linesPerPage; ++i)
        hw.mem().pokeMemory(lineAddr(0x300, i), 7000 + i);
    ChwEngine::Descriptor desc;
    desc.src = 0x300;
    desc.dst = 0x700;
    desc.mode = ChwMode::Noncacheable;
    ASSERT_TRUE(hw.chw().submitMigrate(desc));
    for (int i = 0; i < 24; ++i)
        hw.eventq().step();
    MigrationEntry *entry =
        hw.mem().migrationTable().findBySrc(0x300);
    ASSERT_NE(entry, nullptr);
    ASSERT_GT(entry->ptr, 1u);

    // DMA read of a copied line via the source name: served from
    // the destination transparently.
    const auto read = hw.mem().deviceAccess(lineAddr(0x300, 0),
                                            false);
    EXPECT_EQ(read.value, 7000u);
    EXPECT_TRUE(read.redirected);

    // DMA write to an uncopied line via the source name: must land
    // where the copy engine will pick it up.
    const unsigned late = linesPerPage - 1;
    hw.mem().deviceAccess(lineAddr(0x300, late), true, 0x77);
    hw.drain();
    hw.chw().clear(0x300);
    EXPECT_EQ(hw.mem().authoritativeValue(lineAddr(0x700, late)),
              0x77u);
}

TEST(LazyInvalidation, AllTlbsSwitchAfterMigration)
{
    HwSystem hw;
    KernelConfig kc;
    kc.memBytes = 256_MiB;
    kc.kernelTextBytes = 2_MiB;
    Kernel kernel(kc);
    PageTables tables(kernel);
    ASSERT_TRUE(tables.map(0x42, 0x111, 0));

    // Warm every core's TLB with the source translation.
    for (CoreId c = 0; c < hw.config().cores; ++c)
        hw.mmu(c).translate(Addr{0x42} << pageShift, tables);

    bool done = false;
    hw.shootdown().contiguitasMigrate(
        0, 0x42, tables, 0x222, ChwMode::Noncacheable, hw.chw(),
        [&done](MigrationTiming) { done = true; });
    hw.drain();
    ASSERT_TRUE(done);

    // Every core must now translate to the destination (its stale
    // entry was invalidated at the lazy kernel-entry point).
    for (CoreId c = 0; c < hw.config().cores; ++c) {
        const auto r =
            hw.mmu(c).translate(Addr{0x42} << pageShift, tables);
        ASSERT_TRUE(r.valid);
        EXPECT_EQ(r.paddr >> pageShift, 0x222u) << "core " << c;
    }
}

TEST(RingLatency, SymmetricAndBounded)
{
    MemHierarchy mem{HwConfig{}};
    const HwConfig config;
    for (unsigned a = 0; a < config.llcSlices(); ++a) {
        EXPECT_EQ(mem.ringLat(a, a), 0u);
        for (unsigned b = 0; b < config.llcSlices(); ++b) {
            EXPECT_EQ(mem.ringLat(a, b), mem.ringLat(b, a));
            EXPECT_LE(mem.ringLat(a, b),
                      (config.llcSlices() / 2) * config.ringHopLat);
        }
    }
}

TEST(SliceHash, SpreadsLinesAcrossSlices)
{
    MemHierarchy mem{HwConfig{}};
    std::vector<unsigned> counts(HwConfig{}.llcSlices(), 0);
    for (unsigned i = 0; i < linesPerPage; ++i)
        ++counts[mem.sliceOf(lineAddr(0x300, i))];
    // A page's 64 lines must touch several slices (the Figure 9
    // distributed-copy scenario depends on it).
    unsigned used = 0;
    for (const unsigned c : counts)
        used += c > 0;
    EXPECT_GE(used, 4u);
}

TEST(DeviceNack, DeviceGetsNoncacheableNotification)
{
    HwSystem hw;
    ChwEngine::Descriptor desc;
    desc.src = 0x300;
    desc.dst = 0x700;
    desc.mode = ChwMode::Noncacheable;
    desc.startCopyNow = false;
    ASSERT_TRUE(hw.chw().submitMigrate(desc));
    // Device accesses are always uncached agents; they must succeed
    // against a migrating page without NACK bookkeeping explosions.
    const auto before = hw.mem().stats().nackRetries;
    hw.mem().deviceAccess(lineAddr(0x300, 2), false);
    hw.mem().deviceAccess(lineAddr(0x300, 3), false);
    EXPECT_EQ(hw.mem().stats().nackRetries, before);
    hw.chw().clear(0x300);
}

TEST(ChurnPause, ArrivalsStopDeathsContinue)
{
    KernelConfig kc;
    kc.memBytes = 256_MiB;
    kc.kernelTextBytes = 2_MiB;
    Kernel kernel(kc);
    ChurnPool::Config config;
    config.ratePerSec = 5000;
    config.meanLifeSec = 0.2;
    config.longLivedFrac = 0.0;
    config.burstSigma = 0.0;
    ChurnPool pool(kernel, config, 3);
    pool.advanceTo(5.0);
    const std::uint64_t peak = pool.livePages();
    ASSERT_GT(peak, 0u);
    pool.pause();
    pool.advanceTo(7.0); // 10 mean lifetimes later
    EXPECT_LT(pool.livePages(), peak / 100 + 2);
}

} // namespace
} // namespace ctg
