/**
 * @file
 * Kernel substrate tests: PSI, slab, page tables, address spaces,
 * compaction, churn pools, netstack and reclaim.
 */

#include <gtest/gtest.h>

#include "base/units.hh"
#include "kernel/addrspace.hh"
#include "kernel/churn.hh"
#include "kernel/compaction.hh"
#include "kernel/fsbuffers.hh"
#include "kernel/kernel.hh"
#include "kernel/netstack.hh"
#include "kernel/pagetable.hh"
#include "kernel/psi.hh"
#include "kernel/slab.hh"
#include "mem/mem_stats.hh"
#include "mem/scanner.hh"

namespace ctg
{
namespace
{

KernelConfig
smallConfig()
{
    KernelConfig config;
    config.memBytes = 256_MiB;
    config.kernelTextBytes = 4_MiB;
    return config;
}

TEST(Psi, NoStallMeansZeroPressure)
{
    Psi psi;
    psi.advanceTo(1e6);
    EXPECT_DOUBLE_EQ(psi.pressure(), 0.0);
}

TEST(Psi, FullStallSaturatesNearHundred)
{
    Psi psi;
    for (int i = 1; i <= 20; ++i) {
        psi.recordStall(1e6);
        psi.advanceTo(i * 1e6);
    }
    EXPECT_GT(psi.pressure(), 95.0);
    EXPECT_LE(psi.pressure(), 100.0);
}

TEST(Psi, PressureDecaysAfterStallStops)
{
    Psi psi;
    psi.recordStall(5e5);
    psi.advanceTo(1e6);
    const double peak = psi.pressure();
    EXPECT_GT(peak, 0.0);
    psi.advanceTo(61e6); // a minute of calm
    EXPECT_LT(psi.pressure(), peak / 4.0);
}

TEST(Psi, StallClampedToInterval)
{
    Psi psi;
    psi.recordStall(10e6); // more stall than wall-clock
    psi.advanceTo(1e6);
    EXPECT_LE(psi.pressure(), 100.0);
}

TEST(KernelFacade, BootPlacesKernelText)
{
    Kernel kernel(smallConfig());
    const auto counts = kernel.mem().stats().unmovableBySource(
        0, kernel.mem().numFrames());
    const auto text_pages =
        counts[static_cast<unsigned>(AllocSource::KernelText)];
    EXPECT_EQ(text_pages, (4_MiB) / pageBytes);
}

TEST(KernelFacade, ReclaimInvokedOnFailure)
{
    class CountingShrinker : public Shrinker
    {
      public:
        std::uint64_t calls = 0;

        std::uint64_t
        shrink(std::uint64_t) override
        {
            ++calls;
            return 0;
        }
    };

    Kernel kernel(smallConfig());
    CountingShrinker shrinker;
    kernel.registerShrinker(&shrinker);

    // Exhaust memory.
    std::vector<Pfn> held;
    while (true) {
        AllocRequest req;
        req.order = maxOrder;
        req.mt = MigrateType::Movable;
        const Pfn p = kernel.allocPages(req);
        if (p == invalidPfn)
            break;
        held.push_back(p);
    }
    EXPECT_GT(shrinker.calls, 0u);
    EXPECT_GT(kernel.counters().allocFailures, 0u);
    for (const Pfn p : held)
        kernel.freePages(p);
}

TEST(Slab, ObjectRoundTrip)
{
    Kernel kernel(smallConfig());
    SlabAllocator slab(kernel);
    const auto handle = slab.allocObject(100);
    ASSERT_NE(handle, 0u);
    EXPECT_EQ(slab.liveObjects(), 1u);
    EXPECT_GE(slab.backingPages(), 1u);
    slab.freeObject(handle);
    EXPECT_EQ(slab.liveObjects(), 0u);
}

TEST(Slab, PacksObjectsOntoOnePage)
{
    Kernel kernel(smallConfig());
    SlabAllocator slab(kernel);
    std::vector<SlabAllocator::ObjHandle> handles;
    for (int i = 0; i < 32; ++i)
        handles.push_back(slab.allocObject(64));
    // 32 64-byte objects fit in one 4 KB page.
    EXPECT_EQ(slab.backingPages(), 1u);
    for (const auto h : handles)
        slab.freeObject(h);
}

TEST(Slab, OneLiveObjectPinsThePage)
{
    Kernel kernel(smallConfig());
    SlabAllocator slab(kernel);
    std::vector<SlabAllocator::ObjHandle> handles;
    for (int i = 0; i < 64; ++i)
        handles.push_back(slab.allocObject(64));
    const std::uint64_t pages_before = slab.backingPages();
    // Free all but one object: the backing page must stay.
    for (std::size_t i = 1; i < handles.size(); ++i)
        slab.freeObject(handles[i]);
    EXPECT_EQ(slab.backingPages(), pages_before);
    slab.freeObject(handles[0]);
}

TEST(Slab, ShrinkerReleasesCachedSlabs)
{
    Kernel kernel(smallConfig());
    SlabAllocator slab(kernel);
    std::vector<SlabAllocator::ObjHandle> handles;
    for (int i = 0; i < 4096; ++i)
        handles.push_back(slab.allocObject(512));
    for (const auto h : handles)
        slab.freeObject(h);
    // Empty slabs are cached until shrunk.
    EXPECT_GT(slab.backingPages(), 0u);
    slab.shrink(~std::uint64_t{0});
    EXPECT_EQ(slab.backingPages(), 0u);
}

TEST(Slab, DistinctHandlesWhileLive)
{
    Kernel kernel(smallConfig());
    SlabAllocator slab(kernel);
    std::set<SlabAllocator::ObjHandle> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto h = slab.allocObject(192);
        EXPECT_TRUE(seen.insert(h).second);
    }
}

TEST(PageTablesTest, MapTranslateUnmap)
{
    Kernel kernel(smallConfig());
    PageTables tables(kernel);
    ASSERT_TRUE(tables.map(0x1000, 777, 0));
    const Translation t = tables.translate(0x1000);
    ASSERT_TRUE(t.valid);
    EXPECT_EQ(t.pfn, 777u);
    EXPECT_EQ(t.order, 0u);
    EXPECT_TRUE(tables.unmap(0x1000));
    EXPECT_FALSE(tables.translate(0x1000).valid);
}

TEST(PageTablesTest, HugeLeafCoversRange)
{
    Kernel kernel(smallConfig());
    PageTables tables(kernel);
    ASSERT_TRUE(tables.map(0, 4096, hugeOrder));
    const Translation t = tables.translate(300);
    ASSERT_TRUE(t.valid);
    EXPECT_EQ(t.order, hugeOrder);
    EXPECT_EQ(t.pfn, 4096u + 300u);
}

TEST(PageTablesTest, GiganticLeaf)
{
    Kernel kernel(smallConfig());
    PageTables tables(kernel);
    ASSERT_TRUE(tables.map(0, 0, gigaOrder));
    const Translation t = tables.translate(pagesPerGiga - 1);
    ASSERT_TRUE(t.valid);
    EXPECT_EQ(t.order, gigaOrder);
    EXPECT_EQ(t.pfn, pagesPerGiga - 1);
}

TEST(PageTablesTest, TablePagesAreUnmovableAllocations)
{
    Kernel kernel(smallConfig());
    const auto before = kernel.mem().stats().unmovableBySource(
        0, kernel.mem().numFrames());
    PageTables tables(kernel);
    // Map sparse addresses to force distinct table paths.
    for (Vpn vpn = 0; vpn < 8; ++vpn)
        ASSERT_TRUE(tables.map(vpn << 27, 1, 0));
    const auto after = kernel.mem().stats().unmovableBySource(
        0, kernel.mem().numFrames());
    const auto idx = static_cast<unsigned>(AllocSource::PageTables);
    EXPECT_GT(after[idx], before[idx]);
    EXPECT_EQ(after[idx] - before[idx], tables.tablePages());
}

TEST(PageTablesTest, WalkDepthVariesWithPageSize)
{
    Kernel kernel(smallConfig());
    PageTables tables(kernel);
    ASSERT_TRUE(tables.map(0, 1, 0));
    ASSERT_TRUE(tables.map(pagesPerGiga, 4096, hugeOrder));
    unsigned depth4k = 0, depth2m = 0;
    tables.walkAddrs(0, &depth4k);
    tables.walkAddrs(pagesPerGiga, &depth2m);
    EXPECT_EQ(depth4k, 4u);
    EXPECT_EQ(depth2m, 3u);
}

TEST(AddressSpaceTest, TouchBacksWithThp)
{
    Kernel kernel(smallConfig());
    AddressSpace space(kernel, 1);
    const Addr base = space.mmap(8_MiB);
    const std::uint64_t backed = space.touchRange(base, 8_MiB);
    EXPECT_EQ(backed, (8_MiB) / pageBytes);
    // Fresh memory: THP should back everything with 2 MB chunks.
    EXPECT_EQ(space.chunks2m(), 4u);
    EXPECT_EQ(space.pages4k(), 0u);
}

TEST(AddressSpaceTest, ThpDisabledUses4k)
{
    KernelConfig config = smallConfig();
    config.thpEnabled = false;
    Kernel kernel(config);
    AddressSpace space(kernel, 1);
    const Addr base = space.mmap(2_MiB);
    space.touchRange(base, 2_MiB);
    EXPECT_EQ(space.chunks2m(), 0u);
    EXPECT_EQ(space.pages4k(), pagesPerHuge);
}

TEST(AddressSpaceTest, MunmapReleasesEverything)
{
    Kernel kernel(smallConfig());
    const std::uint64_t free_before =
        kernel.policy().freeUserPages();
    AddressSpace space(kernel, 1);
    const Addr base = space.mmap(16_MiB);
    space.touchRange(base, 16_MiB);
    space.munmap(base);
    // Page-table pages may remain; user pages must all be back.
    EXPECT_EQ(space.backedPages(), 0u);
    const std::uint64_t free_after = kernel.policy().freeUserPages();
    EXPECT_GE(free_after + 64, free_before); // tables tolerance
}

TEST(AddressSpaceTest, RelocateUpdatesTranslation)
{
    Kernel kernel(smallConfig());
    AddressSpace space(kernel, 1);
    const Addr base = space.mmap(1_MiB);
    space.touchRange(base, 1_MiB);
    const Translation before = space.translate(base);
    ASSERT_TRUE(before.valid);

    // Simulate what compaction does.
    AllocRequest req;
    req.order = before.order;
    req.mt = MigrateType::Movable;
    const Pfn fresh = kernel.allocPages(req);
    ASSERT_NE(fresh, invalidPfn);
    const std::uint64_t owner =
        kernel.mem().frame(before.pfn).owner();
    ASSERT_TRUE(kernel.owners().relocate(owner, before.pfn, fresh));
    EXPECT_EQ(space.translate(base).pfn, fresh);
}

TEST(CompactionTest, FormsHugeBlockFromFragmentedMemory)
{
    Kernel kernel(smallConfig());
    AddressSpace space(kernel, 1);

    // Back a large range with 4 KB pages (thp off via odd sizes),
    // then punch holes: memory is fragmented but fully movable.
    const Addr base = space.mmap(128_MiB);
    space.touchRange(base, 128_MiB);
    space.releasePages((64_MiB) / pageBytes, kernel.rng());

    // Consume the naturally coalesced large blocks so compaction has
    // real work to do.
    std::vector<Pfn> hogs;
    while (true) {
        const Pfn p = kernel.policy().movableAllocator().allocPages(
            hugeOrder, MigrateType::Movable, AllocSource::User, 0,
            AddrPref::None, false);
        if (p == invalidPfn)
            break;
        hogs.push_back(p);
    }
    for (const Pfn p : hogs)
        kernel.freePages(p);

    const CompactionResult r = kernel.compact(hugeOrder);
    EXPECT_TRUE(r.targetReached);
}

TEST(CompactionTest, UnmovablePageBlocksPageblock)
{
    Kernel kernel(smallConfig());
    // A lone kernel page inside a pageblock makes it unmovable for
    // compaction purposes.
    AllocRequest req;
    req.order = 0;
    req.mt = MigrateType::Unmovable;
    req.source = AllocSource::Slab;
    const Pfn p = kernel.allocPages(req);
    ASSERT_NE(p, invalidPfn);
    const CompactionResult r = compactRange(
        kernel.policy().movableAllocator(), kernel.owners(),
        0, kernel.mem().numFrames(), 1u << 20);
    EXPECT_GT(r.blockedPageblocks, 0u);
    kernel.freePages(p);
}

TEST(CompactionTest, CompactUntilBlockedPageblocksIsSnapshot)
{
    // THP would back the range with whole pageblocks (never mixed),
    // leaving compaction nothing to migrate — use 4 KB pages.
    KernelConfig kconfig = smallConfig();
    kconfig.thpEnabled = false;
    Kernel kernel(kconfig);
    AddressSpace space(kernel, 1);

    // Scatter some unmovable pages so pageblocks are blocked, then
    // fragment movable memory so the first pass has real migrations
    // and a second pass runs.
    std::vector<Pfn> slabs;
    for (int i = 0; i < 6; ++i) {
        AllocRequest req;
        req.order = 0;
        req.mt = MigrateType::Unmovable;
        req.source = AllocSource::Slab;
        const Pfn p = kernel.allocPages(req);
        ASSERT_NE(p, invalidPfn);
        slabs.push_back(p);
    }
    const Addr base = space.mmap(48_MiB);
    space.touchRange(base, 48_MiB);
    space.releasePages((16_MiB) / pageBytes, kernel.rng());

    BuddyAllocator &alloc = kernel.policy().movableAllocator();
    // An order the buddy lists can never satisfy (> maxOrder), so
    // compaction always runs its full multi-pass loop.
    const CompactionResult total =
        compactUntil(alloc, kernel.owners(), gigaOrder, 1u << 20);
    EXPECT_GT(total.migrated, 0u);
    EXPECT_FALSE(total.targetReached);

    // blockedPageblocks is a final-pass *snapshot*: it must equal
    // the number of pageblocks currently containing an unmovable
    // page — not that count summed once per pass.
    const Pfn lo = alloc.startPfn();
    const Pfn hi =
        lo + ((alloc.endPfn() - lo) / pagesPerHuge) * pagesPerHuge;
    std::uint64_t tainted = 0;
    for (Pfn block = lo; block < hi; block += pagesPerHuge) {
        for (Pfn pfn = block; pfn < block + pagesPerHuge; ++pfn) {
            if (kernel.mem().frame(pfn).isUnmovableAllocation()) {
                ++tainted;
                break;
            }
        }
    }
    EXPECT_GT(tainted, 0u);
    EXPECT_EQ(total.blockedPageblocks, tainted);
}

TEST(ChurnPoolTest, SteadyStateMatchesLittlesLaw)
{
    Kernel kernel(smallConfig());
    ChurnPool::Config config;
    config.ratePerSec = 2000;
    config.meanLifeSec = 0.5;
    config.longLivedFrac = 0.0;
    config.burstSigma = 0.0; // steady Poisson for Little's law
    ChurnPool pool(kernel, config, 7);
    pool.advanceTo(30.0);
    // Little's law: live ~= rate * mean life = 1000 pages (order 0).
    EXPECT_GT(pool.livePages(), 700u);
    EXPECT_LT(pool.livePages(), 1300u);
    pool.drain();
    EXPECT_EQ(pool.livePages(), 0u);
}

TEST(NetStackTest, RingsAndSkbsAreNetworkingUnmovable)
{
    Kernel kernel(smallConfig());
    NetStack::Config config;
    config.queues = 4;
    config.skbRatePerSec = 5000;
    NetStack net(kernel, config, 3);
    net.start();
    net.advanceTo(5.0);
    const auto counts = kernel.mem().stats().unmovableBySource(
        0, kernel.mem().numFrames());
    const auto idx = static_cast<unsigned>(AllocSource::Networking);
    EXPECT_GT(counts[idx], 0u);
    EXPECT_GE(counts[idx], net.livePages() / 2);
}

TEST(NetStackTest, PinsUserPages)
{
    Kernel kernel(smallConfig());
    AddressSpace space(kernel, 1);
    const Addr base = space.mmap(4_MiB);
    space.touchRange(base, 4_MiB);
    // Release THP chunking by touching with 4K: instead, just pin.
    NetStack net(kernel, {}, 3);
    // Force 4K pages by disabling THP at touch time is not possible
    // here; mmap another region with sub-huge size.
    const Addr small = space.mmap(64_KiB);
    space.touchRange(small, 64_KiB);
    const std::uint64_t pinned = net.pinUserPages(space, 8);
    EXPECT_GT(pinned, 0u);
    EXPECT_EQ(net.pinnedPages(), pinned);
    net.unpinAll();
    EXPECT_EQ(net.pinnedPages(), 0u);
}

TEST(FsBuffersTest, CacheGrowsAndShrinks)
{
    Kernel kernel(smallConfig());
    FsBuffers::Config config;
    config.cacheGrowthPagesPerSec = 1000;
    FsBuffers fs(kernel, config, 11);
    fs.advanceTo(10.0);
    EXPECT_GT(fs.cachePages(), 5000u);
    const std::uint64_t freed = fs.shrink(1000);
    EXPECT_EQ(freed, 1000u);
}

} // namespace
} // namespace ctg
