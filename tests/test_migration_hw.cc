/**
 * @file
 * Contiguitas-HW migration correctness and timing tests: the
 * migration table, redirection linearizability under concurrent
 * traffic through both mappings, both cacheable and noncacheable
 * modes, slice handoff, and the end-to-end migration procedures
 * (classic vs Contiguitas) whose timings Figure 13 reports.
 */

#include <gtest/gtest.h>

#include <array>

#include "base/rng.hh"
#include "base/units.hh"
#include "hw/system.hh"

namespace ctg
{
namespace
{

constexpr Pfn srcPage = 0x300;
constexpr Pfn dstPage = 0x5123;

Addr
lineAddr(Pfn page, unsigned idx)
{
    return pfnToAddr(page) + static_cast<Addr>(idx) * lineBytes;
}

TEST(MigrationTable, InstallFindClear)
{
    MigrationTable table(16);
    MigrationEntry *entry =
        table.install(srcPage, dstPage, ChwMode::Noncacheable);
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(table.find(srcPage), entry);
    EXPECT_EQ(table.find(dstPage), entry);
    EXPECT_EQ(table.findBySrc(srcPage), entry);
    table.clear(srcPage);
    EXPECT_EQ(table.find(srcPage), nullptr);
}

TEST(MigrationTable, CapacityIsEnforced)
{
    MigrationTable table(4);
    for (Pfn i = 0; i < 4; ++i)
        ASSERT_NE(table.install(100 + i, 200 + i,
                                ChwMode::Noncacheable),
                  nullptr);
    EXPECT_EQ(table.install(300, 400, ChwMode::Noncacheable),
              nullptr);
    EXPECT_EQ(table.installFailures(), 1u);
    EXPECT_EQ(table.occupancy(), 4u);
}

TEST(MigrationTable, CanonicalLineFollowsPtr)
{
    MigrationTable table(16);
    MigrationEntry *entry =
        table.install(srcPage, dstPage, ChwMode::Noncacheable);
    entry->ptr = 10;
    // Copied lines resolve to the destination, uncopied to source —
    // for requests through either name.
    EXPECT_EQ(canonicalLine(*entry, lineAddr(srcPage, 5)),
              lineAddr(dstPage, 5));
    EXPECT_EQ(canonicalLine(*entry, lineAddr(dstPage, 5)),
              lineAddr(dstPage, 5));
    EXPECT_EQ(canonicalLine(*entry, lineAddr(srcPage, 30)),
              lineAddr(srcPage, 30));
    EXPECT_EQ(canonicalLine(*entry, lineAddr(dstPage, 30)),
              lineAddr(srcPage, 30));
}

class ChwEngineTest : public ::testing::Test
{
  protected:
    ChwEngineTest()
    {
        // Seed the source page with known line tokens.
        for (unsigned i = 0; i < linesPerPage; ++i)
            hw.mem().pokeMemory(lineAddr(srcPage, i), 1000 + i);
    }

    HwSystem hw;
};

TEST_F(ChwEngineTest, CopiesWholePage)
{
    bool completed = false;
    ChwEngine::Descriptor desc;
    desc.src = srcPage;
    desc.dst = dstPage;
    desc.mode = ChwMode::Noncacheable;
    desc.onComplete = [&completed] { completed = true; };
    ASSERT_TRUE(hw.chw().submitMigrate(desc));
    hw.drain();
    ASSERT_TRUE(completed);
    hw.chw().clear(srcPage);
    for (unsigned i = 0; i < linesPerPage; ++i) {
        EXPECT_EQ(hw.mem().authoritativeValue(lineAddr(dstPage, i)),
                  1000 + i)
            << "line " << i;
    }
    EXPECT_EQ(hw.chw().stats().linesCopied, linesPerPage);
    EXPECT_GT(hw.chw().stats().sliceHandoffs, 0u);
}

TEST_F(ChwEngineTest, RedirectionServesCopiedLinesFromDst)
{
    ChwEngine::Descriptor desc;
    desc.src = srcPage;
    desc.dst = dstPage;
    desc.mode = ChwMode::Noncacheable;
    ASSERT_TRUE(hw.chw().submitMigrate(desc));

    // Advance the copy partially.
    for (int i = 0; i < 20; ++i)
        hw.eventq().step();
    MigrationEntry *entry =
        hw.mem().migrationTable().findBySrc(srcPage);
    ASSERT_NE(entry, nullptr);
    ASSERT_GT(entry->ptr, 0u);
    ASSERT_LT(entry->ptr, linesPerPage);

    // Reads through the source name must return correct data both
    // before and after the Ptr frontier.
    const unsigned copied = 0;
    const unsigned uncopied = linesPerPage - 1;
    const auto low =
        hw.mem().access(0, lineAddr(srcPage, copied), false);
    EXPECT_EQ(low.value, 1000u + copied);
    EXPECT_TRUE(low.redirected);
    const auto high =
        hw.mem().access(0, lineAddr(srcPage, uncopied), false);
    EXPECT_EQ(high.value, 1000u + uncopied);
    hw.drain();
}

TEST_F(ChwEngineTest, WritesDuringMigrationLandInFinalPage)
{
    ChwEngine::Descriptor desc;
    desc.src = srcPage;
    desc.dst = dstPage;
    desc.mode = ChwMode::Noncacheable;
    ASSERT_TRUE(hw.chw().submitMigrate(desc));

    // Write through the source mapping to an uncopied line while the
    // copy is in flight: the value must survive into the
    // destination.
    for (int i = 0; i < 10; ++i)
        hw.eventq().step();
    MigrationEntry *entry =
        hw.mem().migrationTable().findBySrc(srcPage);
    ASSERT_NE(entry, nullptr);
    const unsigned target = linesPerPage - 2;
    ASSERT_GT(target, entry->ptr);
    hw.mem().access(1, lineAddr(srcPage, target), true, 0xabcd);
    hw.drain();
    hw.chw().clear(srcPage);
    EXPECT_EQ(hw.mem().authoritativeValue(lineAddr(dstPage, target)),
              0xabcdu);
}

TEST_F(ChwEngineTest, NoncacheableBypassesPrivateCaches)
{
    ChwEngine::Descriptor desc;
    desc.src = srcPage;
    desc.dst = dstPage;
    desc.mode = ChwMode::Noncacheable;
    desc.startCopyNow = false; // mapping only; no copy progress yet
    ASSERT_TRUE(hw.chw().submitMigrate(desc));

    const auto first =
        hw.mem().access(0, lineAddr(srcPage, 3), false);
    EXPECT_TRUE(first.bypassedPrivate);
    // Still bypasses on repeat (no private fill happened).
    const auto second =
        hw.mem().access(0, lineAddr(srcPage, 3), false);
    EXPECT_TRUE(second.bypassedPrivate);
    EXPECT_GT(second.latency, hw.config().l1Lat);
    hw.chw().clear(srcPage);
}

TEST_F(ChwEngineTest, NackRetryChargedOncePerCore)
{
    ChwEngine::Descriptor desc;
    desc.src = srcPage;
    desc.dst = dstPage;
    desc.mode = ChwMode::Noncacheable;
    desc.startCopyNow = false;
    ASSERT_TRUE(hw.chw().submitMigrate(desc));

    const auto before = hw.mem().stats().nackRetries;
    hw.mem().access(2, lineAddr(srcPage, 0), false);
    hw.mem().access(2, lineAddr(srcPage, 1), false);
    hw.mem().access(5, lineAddr(srcPage, 0), false);
    EXPECT_EQ(hw.mem().stats().nackRetries, before + 2);
    hw.chw().clear(srcPage);
}

TEST_F(ChwEngineTest, CacheableSkipsDirtyDestinationLines)
{
    ChwEngine::Descriptor desc;
    desc.src = srcPage;
    desc.dst = dstPage;
    desc.mode = ChwMode::Cacheable;
    desc.startCopyNow = false;
    ASSERT_TRUE(hw.chw().submitMigrate(desc));

    // Phase 1 ends: all TLBs now use the destination mapping. A core
    // writes a line through the destination name; since the line is
    // uncopied it canonicalizes to the source... advance Ptr first
    // by starting the copy, then dirty a line ahead of the frontier
    // through the destination name once it has been copied.
    hw.chw().startCopy(srcPage);
    for (int i = 0; i < 16; ++i)
        hw.eventq().step();
    MigrationEntry *entry =
        hw.mem().migrationTable().findBySrc(srcPage);
    ASSERT_NE(entry, nullptr);
    ASSERT_GT(entry->ptr, 2u);
    // Write to an already-copied line via dst: private M state.
    hw.mem().access(0, lineAddr(dstPage, 1), true, 0xfeed);
    hw.drain();
    hw.chw().clear(srcPage);
    EXPECT_EQ(hw.mem().authoritativeValue(lineAddr(dstPage, 1)),
              0xfeedu);
}

/**
 * Linearizability fuzz: random reads/writes through both names while
 * the engine copies, checked against a logical reference page.
 */
class MigrationFuzz
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>>
{};

TEST_P(MigrationFuzz, BothMappingsStayCoherent)
{
    const auto [seed, mode_int] = GetParam();
    const auto mode = static_cast<ChwMode>(mode_int);
    HwSystem hw;
    Rng rng(seed);

    std::array<std::uint64_t, linesPerPage> reference{};
    for (unsigned i = 0; i < linesPerPage; ++i) {
        reference[i] = 5000 + i;
        hw.mem().pokeMemory(lineAddr(srcPage, i), reference[i]);
    }

    ChwEngine::Descriptor desc;
    desc.src = srcPage;
    desc.dst = dstPage;
    desc.mode = mode;
    bool done = false;
    desc.onComplete = [&done] { done = true; };
    desc.startCopyNow = mode == ChwMode::Noncacheable;
    ASSERT_TRUE(hw.chw().submitMigrate(desc));

    // Cacheable: phase 1 traffic through both names, then start the
    // copy (phase 2: destination name only, as all TLBs switched).
    const bool cacheable = mode == ChwMode::Cacheable;
    if (cacheable) {
        for (int op = 0; op < 200; ++op) {
            const unsigned idx =
                static_cast<unsigned>(rng.below(linesPerPage));
            const Pfn name = rng.chance(0.5) ? srcPage : dstPage;
            const auto core = static_cast<CoreId>(rng.below(8));
            if (rng.chance(0.5)) {
                const std::uint64_t v = rng.next();
                hw.mem().access(core, lineAddr(name, idx), true, v);
                reference[idx] = v;
            } else {
                const auto out =
                    hw.mem().access(core, lineAddr(name, idx), false);
                ASSERT_EQ(out.value, reference[idx])
                    << "phase1 line " << idx;
            }
        }
        hw.chw().startCopy(srcPage);
    }

    // Interleave engine events with traffic.
    while (!done) {
        if (!hw.eventq().step())
            break;
        for (int op = 0; op < 4; ++op) {
            const unsigned idx =
                static_cast<unsigned>(rng.below(linesPerPage));
            const Pfn name = cacheable
                                 ? dstPage
                                 : (rng.chance(0.5) ? srcPage
                                                    : dstPage);
            const auto core = static_cast<CoreId>(rng.below(8));
            if (rng.chance(0.45)) {
                const std::uint64_t v = rng.next();
                hw.mem().access(core, lineAddr(name, idx), true, v);
                reference[idx] = v;
            } else {
                const auto out =
                    hw.mem().access(core, lineAddr(name, idx), false);
                ASSERT_EQ(out.value, reference[idx])
                    << "line " << idx << " via "
                    << (name == srcPage ? "src" : "dst");
            }
        }
    }
    ASSERT_TRUE(done);
    hw.chw().clear(srcPage);

    // Post-migration: destination holds the logical page exactly.
    for (unsigned i = 0; i < linesPerPage; ++i) {
        EXPECT_EQ(hw.mem().authoritativeValue(lineAddr(dstPage, i)),
                  reference[i])
            << "final line " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndModes, MigrationFuzz,
    ::testing::Combine(::testing::Values(7, 99, 1234, 5150),
                       ::testing::Values(0, 1)));

/** Variable buffer sizes (Section 3.3): one mapping covers a
 * multi-page device buffer; redirection and copy span the range. */
class VariableSizeTest : public ::testing::Test
{
  protected:
    static constexpr unsigned bufPages = 4;

    VariableSizeTest()
    {
        for (unsigned p = 0; p < bufPages; ++p) {
            for (unsigned i = 0; i < linesPerPage; ++i) {
                hw.mem().pokeMemory(lineAddr(srcPage + p, i),
                                    token(p, i));
            }
        }
    }

    static std::uint64_t
    token(unsigned page, unsigned line)
    {
        return 0xb0000000 + page * 1000 + line;
    }

    HwSystem hw;
};

TEST_F(VariableSizeTest, TableCoversWholeRange)
{
    MigrationTable table(16);
    MigrationEntry *entry = table.install(
        srcPage, dstPage, ChwMode::Noncacheable, bufPages);
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(table.find(srcPage + bufPages - 1), entry);
    EXPECT_EQ(table.find(dstPage + bufPages - 1), entry);
    EXPECT_EQ(table.find(srcPage + bufPages), nullptr);
    // Ptr halfway through page 1: page 0 fully at dst.
    entry->ptr = linesPerPage + 8;
    EXPECT_EQ(canonicalLine(*entry, lineAddr(srcPage, 5)),
              lineAddr(dstPage, 5));
    EXPECT_EQ(canonicalLine(*entry, lineAddr(srcPage + 1, 5)),
              lineAddr(dstPage + 1, 5));
    EXPECT_EQ(canonicalLine(*entry, lineAddr(srcPage + 1, 30)),
              lineAddr(srcPage + 1, 30));
    EXPECT_EQ(canonicalLine(*entry, lineAddr(srcPage + 3, 0)),
              lineAddr(srcPage + 3, 0));
}

TEST_F(VariableSizeTest, CopiesWholeBuffer)
{
    ChwEngine::Descriptor desc;
    desc.src = srcPage;
    desc.dst = dstPage;
    desc.sizePages = bufPages;
    desc.mode = ChwMode::Noncacheable;
    bool done = false;
    desc.onComplete = [&done] { done = true; };
    ASSERT_TRUE(hw.chw().submitMigrate(desc));
    hw.drain();
    ASSERT_TRUE(done);
    hw.chw().clear(srcPage);
    for (unsigned p = 0; p < bufPages; ++p) {
        for (unsigned i = 0; i < linesPerPage; ++i) {
            ASSERT_EQ(hw.mem().authoritativeValue(
                          lineAddr(dstPage + p, i)),
                      token(p, i))
                << "page " << p << " line " << i;
        }
    }
    EXPECT_EQ(hw.chw().stats().linesCopied,
              bufPages * linesPerPage);
}

TEST_F(VariableSizeTest, ConcurrentTrafficAcrossPages)
{
    ChwEngine::Descriptor desc;
    desc.src = srcPage;
    desc.dst = dstPage;
    desc.sizePages = bufPages;
    desc.mode = ChwMode::Noncacheable;
    bool done = false;
    desc.onComplete = [&done] { done = true; };
    ASSERT_TRUE(hw.chw().submitMigrate(desc));

    Rng rng(0x51ed);
    std::array<std::uint64_t, bufPages * linesPerPage> reference{};
    for (unsigned p = 0; p < bufPages; ++p) {
        for (unsigned i = 0; i < linesPerPage; ++i)
            reference[p * linesPerPage + i] = token(p, i);
    }
    while (!done) {
        if (!hw.eventq().step() || done)
            break;
        for (int op = 0; op < 3; ++op) {
            const unsigned p =
                static_cast<unsigned>(rng.below(bufPages));
            const unsigned i = static_cast<unsigned>(
                rng.below(linesPerPage));
            const Pfn name =
                (rng.chance(0.5) ? srcPage : dstPage) + p;
            if (rng.chance(0.4)) {
                const std::uint64_t v = rng.next();
                hw.mem().access(0, lineAddr(name, i), true, v);
                reference[p * linesPerPage + i] = v;
            } else {
                const auto out =
                    hw.mem().access(1, lineAddr(name, i), false);
                ASSERT_EQ(out.value,
                          reference[p * linesPerPage + i])
                    << "page " << p << " line " << i;
            }
        }
    }
    hw.drain();
    hw.chw().clear(srcPage);
    for (unsigned p = 0; p < bufPages; ++p) {
        for (unsigned i = 0; i < linesPerPage; ++i) {
            ASSERT_EQ(hw.mem().authoritativeValue(
                          lineAddr(dstPage + p, i)),
                      reference[p * linesPerPage + i]);
        }
    }
}

class ProcedureTest : public ::testing::Test
{
  protected:
    ProcedureTest()
        : kernel(makeConfig()), tables(kernel)
    {}

    static KernelConfig
    makeConfig()
    {
        KernelConfig config;
        config.memBytes = 256_MiB;
        config.kernelTextBytes = 2_MiB;
        return config;
    }

    Kernel kernel;
    PageTables tables;
    HwSystem hw;
};

TEST_F(ProcedureTest, ClassicMigrationBlocksLinearlyInVictims)
{
    Cycles prev = 0;
    for (unsigned victims = 1; victims <= 7; ++victims) {
        const Vpn vpn = 0x1000 + victims;
        ASSERT_TRUE(tables.map(vpn, 0x2000 + victims, 0));
        MigrationTiming timing;
        bool fired = false;
        hw.shootdown().softwareMigrate(
            0, victims, vpn, tables, 0x4000 + victims,
            [&](MigrationTiming t) {
                timing = t;
                fired = true;
            });
        hw.drain();
        ASSERT_TRUE(fired);
        EXPECT_GT(timing.unavailableCycles, prev);
        // Mapping now points at the destination.
        EXPECT_EQ(tables.translate(vpn).pfn, 0x4000u + victims);
        prev = timing.unavailableCycles;
    }
}

TEST_F(ProcedureTest, ClassicUnavailabilityIncludesCopy)
{
    ASSERT_TRUE(tables.map(0x99, 0x111, 0));
    MigrationTiming timing;
    hw.shootdown().softwareMigrate(0, 1, 0x99, tables, 0x222,
                                   [&](MigrationTiming t) {
                                       timing = t;
                                   });
    hw.drain();
    const Cycles copy = timing.pteUpdated - timing.copyDone == 0
                            ? 0
                            : timing.copyDone - timing.shootdownDone;
    EXPECT_NEAR(static_cast<double>(copy), 1300.0, 300.0);
}

TEST_F(ProcedureTest, ContiguitasMigrationNeverBlocks)
{
    ASSERT_TRUE(tables.map(0x55, 0x333, 0));
    for (unsigned i = 0; i < linesPerPage; ++i)
        hw.mem().pokeMemory(lineAddr(0x333, i), 9000 + i);

    MigrationTiming timing;
    bool fired = false;
    hw.shootdown().contiguitasMigrate(
        0, 0x55, tables, 0x444, ChwMode::Noncacheable, hw.chw(),
        [&](MigrationTiming t) {
            timing = t;
            fired = true;
        });
    hw.drain();
    ASSERT_TRUE(fired);
    EXPECT_EQ(timing.unavailableCycles, 0u);
    EXPECT_EQ(tables.translate(0x55).pfn, 0x444u);
    // Data made it over.
    for (unsigned i = 0; i < linesPerPage; ++i) {
        EXPECT_EQ(hw.mem().authoritativeValue(lineAddr(0x444, i)),
                  9000 + i);
    }
    // A 4 KB migration lands in the ~2 us range (Section 5.3).
    const double us =
        static_cast<double>(timing.copyDone - timing.start) /
        (hw.config().ghz * 1000.0);
    EXPECT_LT(us, 5.0);
}

TEST_F(ProcedureTest, ContiguitasCacheableModeCompletes)
{
    ASSERT_TRUE(tables.map(0x66, 0x555, 0));
    for (unsigned i = 0; i < linesPerPage; ++i)
        hw.mem().pokeMemory(lineAddr(0x555, i), 100 + i);

    bool fired = false;
    hw.shootdown().contiguitasMigrate(
        0, 0x66, tables, 0x666, ChwMode::Cacheable, hw.chw(),
        [&](MigrationTiming t) {
            fired = true;
            EXPECT_EQ(t.unavailableCycles, 0u);
        });
    hw.drain();
    ASSERT_TRUE(fired);
    for (unsigned i = 0; i < linesPerPage; ++i) {
        EXPECT_EQ(hw.mem().authoritativeValue(lineAddr(0x666, i)),
                  100 + i);
    }
}

} // namespace
} // namespace ctg
