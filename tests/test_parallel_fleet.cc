/**
 * @file
 * Determinism suite for the parallel fleet execution engine: fleet
 * runs at 1, 2, 4 and 8 threads must produce bit-identical
 * ServerScan vectors, merged stat values, sampler series and
 * fault-injection counts — including with faults armed at every
 * site — plus unit coverage of the Executor itself and of the
 * per-task fault-injector forking machinery.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "base/span_trace.hh"
#include "base/stats.hh"
#include "base/units.hh"
#include "fleet/fleet.hh"
#include "sim/executor.hh"
#include "sim/fault_injector.hh"

namespace ctg
{
namespace
{

/** Exact bit pattern of a double: == on doubles would already be
 * strict, but bits make "byte-identical" literal (and catch -0.0
 * vs 0.0 drift). */
std::uint64_t
bits(double v)
{
    std::uint64_t out;
    std::memcpy(&out, &v, sizeof(out));
    return out;
}

Fleet::Config
smallFleet()
{
    Fleet::Config config;
    config.servers = 8;
    config.memBytes = 512_MiB;
    config.minUptimeSec = 3.0;
    config.maxUptimeSec = 6.0;
    config.prefragmentFrac = 0.3;
    config.seed = 0xdef1ee7;
    return config;
}

void
armEverySite(double p)
{
    FaultInjector &inj = faultInjector();
    for (unsigned i = 0; i < numFaultSites; ++i)
        inj.arm(static_cast<FaultSite>(i), FaultSpec::chance(p));
}

/** Everything observable from one fleet run, flattened to bit
 * patterns for strict comparison. */
struct RunRecord
{
    std::vector<std::uint64_t> scanBits;
    std::vector<std::uint64_t> statBits;
    std::vector<Tick> samplerTicks;
    std::vector<std::uint64_t> samplerBits;
    std::vector<std::uint64_t> faultCounts;

    bool
    operator==(const RunRecord &o) const
    {
        return scanBits == o.scanBits && statBits == o.statBits &&
               samplerTicks == o.samplerTicks &&
               samplerBits == o.samplerBits &&
               faultCounts == o.faultCounts;
    }
};

void
recordScan(const ServerScan &scan, std::vector<std::uint64_t> *out)
{
    for (const double v : scan.freeContiguity)
        out->push_back(bits(v));
    for (const double v : scan.unmovableBlocks)
        out->push_back(bits(v));
    for (const double v : scan.potentialContiguity)
        out->push_back(bits(v));
    out->push_back(bits(scan.unmovablePageRatio));
    for (const std::uint64_t v : scan.bySource)
        out->push_back(v);
    out->push_back(scan.freePages);
    out->push_back(scan.free2mBlocks);
    out->push_back(bits(scan.unmovableRegionFreeShare));
    out->push_back(bits(scan.uptimeSec));
}

RunRecord
runFleetAt(unsigned threads, bool withFaults)
{
    faultInjector().reset(0xd15ea5e);
    if (withFaults)
        armEverySite(0.02);

    StatRegistry registry;
    StatSampler sampler(registry);
    Fleet::Config config = smallFleet();
    config.threads = threads;
    Fleet fleet(config);
    fleet.attachTelemetry(registry, &sampler);
    const std::vector<ServerScan> scans = fleet.run();

    RunRecord record;
    for (const ServerScan &scan : scans)
        recordScan(scan, &record.scanBits);
    for (std::size_t i = 0; i < registry.size(); ++i) {
        const Stat &stat = registry.at(i);
        // Host-side readings (wall clock, worker count, process RSS)
        // legitimately vary between runs; everything else must be
        // exact.
        if (stat.name() == "fleet.run_wall_ms" ||
            stat.name() == "fleet.threads" ||
            stat.name() == "fleet.peak_rss_mb") {
            continue;
        }
        record.statBits.push_back(bits(stat.value()));
        if (stat.kind() == Stat::Kind::Distribution) {
            const auto &dist =
                static_cast<const Distribution &>(stat);
            record.statBits.push_back(dist.count());
            record.statBits.push_back(bits(dist.mean()));
            record.statBits.push_back(bits(dist.min()));
            record.statBits.push_back(bits(dist.max()));
            record.statBits.push_back(bits(dist.stddev()));
        }
    }
    record.samplerTicks = sampler.ticks();
    for (const std::string &name : sampler.statNames()) {
        if (name == "fleet.run_wall_ms" || name == "fleet.threads" ||
            name == "fleet.peak_rss_mb")
            continue;
        const std::vector<double> *series = sampler.series(name);
        for (const double v : *series)
            record.samplerBits.push_back(bits(v));
    }
    for (unsigned i = 0; i < numFaultSites; ++i) {
        const auto &s =
            faultInjector().siteStats(static_cast<FaultSite>(i));
        record.faultCounts.push_back(s.evaluations);
        record.faultCounts.push_back(s.fires);
    }
    faultInjector().reset();
    return record;
}

// ---------------------------------------------------------------
// Fleet determinism across thread counts
// ---------------------------------------------------------------

TEST(ParallelFleet, ScansAndStatsBitIdenticalAcrossThreadCounts)
{
    const RunRecord baseline = runFleetAt(1, /*withFaults=*/false);
    EXPECT_FALSE(baseline.scanBits.empty());
    EXPECT_FALSE(baseline.statBits.empty());
    for (const unsigned threads : {2u, 4u, 8u}) {
        const RunRecord parallel =
            runFleetAt(threads, /*withFaults=*/false);
        EXPECT_EQ(baseline.scanBits, parallel.scanBits)
            << "scan mismatch at " << threads << " threads";
        EXPECT_EQ(baseline.statBits, parallel.statBits)
            << "merged stat mismatch at " << threads << " threads";
        EXPECT_EQ(baseline.samplerTicks, parallel.samplerTicks);
        EXPECT_EQ(baseline.samplerBits, parallel.samplerBits);
    }
}

TEST(ParallelFleet, FaultCountsIdenticalWithEverySiteArmed)
{
    const RunRecord baseline = runFleetAt(1, /*withFaults=*/true);
    std::uint64_t evaluations = 0;
    for (std::size_t i = 0; i < baseline.faultCounts.size(); i += 2)
        evaluations += baseline.faultCounts[i];
    EXPECT_GT(evaluations, 0u) << "faults never probed";
    for (const unsigned threads : {2u, 4u, 8u}) {
        const RunRecord parallel =
            runFleetAt(threads, /*withFaults=*/true);
        EXPECT_EQ(baseline.faultCounts, parallel.faultCounts)
            << "fault counts diverge at " << threads << " threads";
        EXPECT_EQ(baseline.scanBits, parallel.scanBits)
            << "scans under faults diverge at " << threads
            << " threads";
        EXPECT_EQ(baseline.statBits, parallel.statBits);
    }
}

TEST(ParallelFleet, SamplerTicksSurviveRepeatedRuns)
{
    // A reused sampler must keep strictly increasing ticks across
    // back-to-back fleet runs (ticks restarting at 0 used to violate
    // the sampler's non-decreasing contract).
    StatRegistry registry;
    StatSampler sampler(registry);
    Fleet::Config config = smallFleet();
    config.servers = 3;
    config.maxUptimeSec = 4.0;
    Fleet fleet(config);
    fleet.attachTelemetry(registry, &sampler);
    fleet.run();
    fleet.run();
    ASSERT_EQ(sampler.sampleCount(), 6u);
    const std::vector<Tick> &ticks = sampler.ticks();
    for (std::size_t i = 1; i < ticks.size(); ++i)
        EXPECT_LT(ticks[i - 1], ticks[i]);
}

/** Run one arbitrary fleet config and record its scan bits. */
RunRecord
runOnce(const Fleet::Config &config)
{
    faultInjector().reset(0xd15ea5e);
    Fleet fleet(config);
    RunRecord record;
    for (const ServerScan &scan : fleet.run())
        recordScan(scan, &record.scanBits);
    faultInjector().reset();
    return record;
}

TEST(ParallelFleet, WorkloadOverrideNameMatchesDeprecatedEnum)
{
    // CTG_WORKLOAD / Config::workloadOverride is the one-release
    // replacement for the enum-typed kindOverride: the string form
    // (set directly or via the environment) must be bit-identical
    // to the deprecated field, and an unrecognized name must warn
    // and fall through to it rather than silently unpinning.
    Fleet::Config config = smallFleet();
    config.servers = 4;
    config.maxUptimeSec = 4.0;
    config.threads = 2;

    Fleet::Config byEnum = config;
    byEnum.kindOverride = WorkloadKind::CacheB;
    const RunRecord enumRun = runOnce(byEnum);

    Fleet::Config byName = config;
    byName.workloadOverride = "cache-b";
    EXPECT_TRUE(runOnce(byName) == enumRun);

    // Environment spelling, picked up by the overlay.
    setenv("CTG_WORKLOAD", "cache-b", 1);
    Fleet::Config byEnv = config;
    byEnv.applyEnvOverlay();
    unsetenv("CTG_WORKLOAD");
    EXPECT_EQ(byEnv.workloadOverride, "cache-b");
    EXPECT_TRUE(runOnce(byEnv) == enumRun);

    // The string form wins over a conflicting deprecated enum.
    Fleet::Config both = byName;
    both.kindOverride = WorkloadKind::Web;
    EXPECT_TRUE(runOnce(both) == enumRun);

    // Unknown names warn and defer to the deprecated field.
    Fleet::Config bad = byEnum;
    bad.workloadOverride = "warehouse-scale";
    EXPECT_TRUE(runOnce(bad) == enumRun);
}

TEST(ParallelFleet, KindOverridePinsEveryServer)
{
    Fleet::Config config = smallFleet();
    config.servers = 4;
    config.maxUptimeSec = 4.0;
    config.kindOverride = WorkloadKind::CacheB;
    config.threads = 2;
    Fleet fleet(config);
    const auto scans = fleet.run();
    EXPECT_EQ(scans.size(), 4u);
    // The override must not disturb the rest of the seed stream:
    // uptimes match the un-overridden fleet's draws.
    config.kindOverride.reset();
    Fleet mixed(config);
    const auto mixedScans = mixed.run();
    for (std::size_t i = 0; i < scans.size(); ++i)
        EXPECT_EQ(bits(scans[i].uptimeSec),
                  bits(mixedScans[i].uptimeSec));
}

TEST(ParallelFleet, WallClockAndThreadsReported)
{
    Fleet::Config config = smallFleet();
    config.servers = 2;
    config.maxUptimeSec = 4.0;
    config.threads = 2;
    StatRegistry registry;
    Fleet fleet(config);
    fleet.attachTelemetry(registry);
    fleet.run();
    EXPECT_GT(fleet.lastRunWallMs(), 0.0);
    EXPECT_EQ(fleet.lastRunThreads(), 2u);
    const Stat *wall = registry.find("fleet.run_wall_ms");
    const Stat *threads = registry.find("fleet.threads");
    ASSERT_NE(wall, nullptr);
    ASSERT_NE(threads, nullptr);
    EXPECT_DOUBLE_EQ(wall->value(), fleet.lastRunWallMs());
    EXPECT_DOUBLE_EQ(threads->value(), 2.0);
}

// ---------------------------------------------------------------
// Span streams and streaming scan sinks across thread counts
// ---------------------------------------------------------------

/**
 * Flatten the collected span stream to one line per event.
 * Excluded: wall clock (profiling-only) and `threads` args — like
 * the `fleet.threads` stat, the worker count legitimately names the
 * run configuration. Everything else — phase, name, ids, logical
 * timestamps, simulated ticks, streams and args — must be
 * bit-identical at any thread count.
 */
std::vector<std::string>
spanRecord()
{
    std::vector<std::string> out;
    for (const spans::Event &e : spans::collectedEvents()) {
        char head[160];
        std::snprintf(head, sizeof(head),
                      "%d|%s|%llu|%llu|%llu|%llu|%u",
                      static_cast<int>(e.phase), e.name,
                      static_cast<unsigned long long>(e.id),
                      static_cast<unsigned long long>(e.parent),
                      static_cast<unsigned long long>(e.ts),
                      static_cast<unsigned long long>(e.tick),
                      e.stream);
        std::string line = head;
        for (unsigned a = 0; a < e.nargs; ++a) {
            if (std::strcmp(e.args[a].key, "threads") == 0)
                continue;
            line += '|';
            line += e.args[a].key;
            line += '=';
            line += std::to_string(e.args[a].value);
        }
        out.push_back(std::move(line));
    }
    return out;
}

TEST(ParallelFleet, SpanStreamsBitIdenticalAcrossThreadCounts)
{
    // Reference run with spans off: capture must never perturb the
    // simulation, so every traced run below must reproduce it.
    const RunRecord plain = runFleetAt(1, /*withFaults=*/false);

    spans::resetForTest();
    spans::enableAll();
    const RunRecord tracedAtOne = runFleetAt(1, /*withFaults=*/false);
    const std::vector<std::string> baseline = spanRecord();
    spans::resetForTest();

    EXPECT_TRUE(plain == tracedAtOne)
        << "span capture perturbed the simulation";
    ASSERT_FALSE(baseline.empty());
    EXPECT_EQ(spans::droppedCount(), 0u);

    for (const unsigned threads : {4u, 8u}) {
        spans::enableAll();
        const RunRecord traced =
            runFleetAt(threads, /*withFaults=*/false);
        const std::vector<std::string> events = spanRecord();
        spans::resetForTest();
        EXPECT_TRUE(plain == traced)
            << "span capture perturbed the simulation at "
            << threads << " threads";
        EXPECT_EQ(baseline, events)
            << "span stream diverges at " << threads << " threads";
    }
}

TEST(ParallelFleet, StreamedSinksMatchMaterializedQuantiles)
{
    const double fracs[] = {0.0, 0.1, 0.25, 0.5,
                            0.75, 0.9, 0.99, 1.0};
    std::vector<std::uint64_t> baseline;
    for (const unsigned threads : {1u, 4u, 8u}) {
        Fleet::Config config = smallFleet();
        config.threads = threads;
        config.streamScans = true;
        Fleet fleet(config);
        const std::vector<ServerScan> scans = fleet.run();
        ASSERT_FALSE(scans.empty());

        // Materialized reference: the sample vectors the streaming
        // path is allowed to drop.
        EmpiricalCdf free2m;
        EmpiricalCdf unmovable;
        EmpiricalCdf ratio;
        EmpiricalCdf uptime;
        for (const ServerScan &scan : scans) {
            free2m.add(scan.freeContiguity[0]);
            unmovable.add(scan.unmovableBlocks[0]);
            ratio.add(scan.unmovablePageRatio);
            uptime.add(scan.uptimeSec);
        }

        const Fleet::ScanSinks &sinks = fleet.scanSinks();
        EXPECT_EQ(sinks.freeContiguity2m.count(), scans.size());
        EXPECT_EQ(sinks.uptimeSec.count(), scans.size());

        std::vector<std::uint64_t> record;
        const auto check = [&](const OnlineHistogram &sink,
                               const EmpiricalCdf &cdf,
                               const char *what) {
            for (const double f : fracs) {
                EXPECT_EQ(bits(sink.quantile(f)),
                          bits(cdf.quantile(f)))
                    << what << " quantile(" << f << ") at "
                    << threads << " threads";
                record.push_back(bits(sink.quantile(f)));
            }
        };
        check(sinks.freeContiguity2m, free2m, "freeContiguity2m");
        check(sinks.unmovableBlocks2m, unmovable,
              "unmovableBlocks2m");
        check(sinks.unmovablePageRatio, ratio,
              "unmovablePageRatio");
        check(sinks.uptimeSec, uptime, "uptimeSec");
        EXPECT_EQ(
            bits(sinks.uptimeSec.fractionAtOrBelow(4.5)),
            bits(uptime.fractionAtOrBelow(4.5)));

        if (baseline.empty())
            baseline = record;
        else
            EXPECT_EQ(baseline, record)
                << "streamed quantiles diverge at " << threads
                << " threads";
    }
}

// ---------------------------------------------------------------
// Executor unit tests
// ---------------------------------------------------------------

TEST(ExecutorTest, RunsEveryTaskExactlyOnce)
{
    for (const unsigned threads : {1u, 2u, 4u, 8u}) {
        Executor executor(threads);
        constexpr std::size_t count = 100;
        std::vector<std::atomic<unsigned>> hits(count);
        executor.run(count, [&](std::size_t i) {
            hits[i].fetch_add(1);
        });
        for (std::size_t i = 0; i < count; ++i)
            EXPECT_EQ(hits[i].load(), 1u) << "task " << i;
    }
}

TEST(ExecutorTest, SingleThreadRunsInlineInOrder)
{
    Executor executor(1);
    const std::thread::id caller = std::this_thread::get_id();
    std::vector<std::size_t> order;
    executor.run(5, [&](std::size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        order.push_back(i);
    });
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ExecutorTest, RethrowsLowestIndexedFailure)
{
    Executor executor(4);
    for (int repeat = 0; repeat < 3; ++repeat) {
        try {
            executor.run(16, [&](std::size_t i) {
                if (i == 3)
                    throw std::runtime_error("task 3");
                if (i == 11)
                    throw std::runtime_error("task 11");
            });
            FAIL() << "expected an exception";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "task 3");
        }
    }
}

TEST(ExecutorTest, ZeroTasksIsANoop)
{
    Executor executor(4);
    bool ran = false;
    executor.run(0, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ExecutorTest, DefaultThreadsHonorsEnvironment)
{
    ASSERT_EQ(setenv("CTG_THREADS", "3", 1), 0);
    EXPECT_EQ(Executor::defaultThreads(), 3u);
    EXPECT_EQ(Executor().threads(), 3u);
    ASSERT_EQ(setenv("CTG_THREADS", "garbage", 1), 0);
    EXPECT_GE(Executor::defaultThreads(), 1u);
    ASSERT_EQ(unsetenv("CTG_THREADS"), 0);
    EXPECT_GE(Executor::defaultThreads(), 1u);
}

// ---------------------------------------------------------------
// Fault-injector forking and scoping
// ---------------------------------------------------------------

TEST(FaultForkTest, ForkedStreamsAreDeterministicPerStreamId)
{
    FaultInjector parent(0xabcdef);
    parent.arm(FaultSite::BuddyAllocFail, FaultSpec::chance(0.5));

    const auto firePattern = [](FaultInjector inj) {
        std::vector<bool> fires;
        for (int i = 0; i < 64; ++i)
            fires.push_back(
                inj.shouldFail(FaultSite::BuddyAllocFail));
        return fires;
    };

    EXPECT_EQ(firePattern(parent.forkForTask(7)),
              firePattern(parent.forkForTask(7)));
    EXPECT_NE(firePattern(parent.forkForTask(7)),
              firePattern(parent.forkForTask(8)));
}

TEST(FaultForkTest, ForkCopiesSpecsAndResetsState)
{
    FaultInjector parent(1);
    parent.arm(FaultSite::ChwMidcopyAbort, FaultSpec::everyNth(3));
    // Burn parent state; the fork must not inherit it.
    parent.shouldFail(FaultSite::ChwMidcopyAbort);
    parent.shouldFail(FaultSite::ChwMidcopyAbort);

    FaultInjector fork = parent.forkForTask(0);
    EXPECT_TRUE(fork.armed(FaultSite::ChwMidcopyAbort));
    EXPECT_EQ(fork.siteStats(FaultSite::ChwMidcopyAbort).evaluations,
              0u);
    EXPECT_FALSE(fork.shouldFail(FaultSite::ChwMidcopyAbort));
    EXPECT_FALSE(fork.shouldFail(FaultSite::ChwMidcopyAbort));
    EXPECT_TRUE(fork.shouldFail(FaultSite::ChwMidcopyAbort));
    EXPECT_FALSE(fork.armed(FaultSite::BuddyAllocFail));
}

TEST(FaultForkTest, AbsorbStatsSumsPerSite)
{
    FaultInjector sink(1);
    FaultInjector a(2);
    FaultInjector b(3);
    a.arm(FaultSite::BuddyAllocFail, FaultSpec::everyNth(1));
    a.shouldFail(FaultSite::BuddyAllocFail);
    b.shouldFail(FaultSite::BuddyAllocFail);
    sink.absorbStats(a);
    sink.absorbStats(b);
    EXPECT_EQ(sink.siteStats(FaultSite::BuddyAllocFail).evaluations,
              2u);
    EXPECT_EQ(sink.siteStats(FaultSite::BuddyAllocFail).fires, 1u);
}

TEST(FaultScopeTest, ScopeOverridesAndRestores)
{
    FaultInjector &global = faultInjector();
    FaultInjector local(42);
    {
        const FaultInjectorScope scope(local);
        EXPECT_EQ(&faultInjector(), &local);
        FaultInjector inner(43);
        {
            const FaultInjectorScope nested(inner);
            EXPECT_EQ(&faultInjector(), &inner);
        }
        EXPECT_EQ(&faultInjector(), &local);
    }
    EXPECT_EQ(&faultInjector(), &global);
}

TEST(FaultScopeTest, ScopeIsPerThread)
{
    FaultInjector local(42);
    const FaultInjectorScope scope(local);
    FaultInjector *seenOnWorker = nullptr;
    std::thread worker(
        [&] { seenOnWorker = &faultInjector(); });
    worker.join();
    EXPECT_EQ(&faultInjector(), &local);
    EXPECT_NE(seenOnWorker, &local);
}

} // namespace
} // namespace ctg
