/**
 * @file
 * Performance-model tests: hardware-generation coverage arithmetic
 * and the walk-cycle measurement's qualitative properties (larger
 * pages -> fewer walk cycles; partial coverage in between; giga
 * pages shorten walks further).
 */

#include <gtest/gtest.h>

#include "perfmodel/hwgen.hh"
#include "perfmodel/walkmodel.hh"

namespace ctg
{
namespace
{

TEST(HwGen, FiveGenerationsWithGrowingCapacity)
{
    const auto gens = hwGenerations();
    ASSERT_EQ(gens.size(), 5u);
    for (std::size_t i = 1; i < gens.size(); ++i) {
        EXPECT_GT(gens[i].relativeCapacity,
                  gens[i - 1].relativeCapacity);
    }
    EXPECT_NEAR(gens.back().relativeCapacity, 8.0, 0.5);
}

TEST(HwGen, CoverageShrinksAcrossGenerations)
{
    const auto gens = hwGenerations();
    for (std::size_t i = 1; i < gens.size(); ++i) {
        EXPECT_LT(tlbCoverage(gens[i], hugeBytes),
                  tlbCoverage(gens[i - 1], hugeBytes) * 1.05);
    }
    // 1 GB pages cover more than the whole machine on every gen.
    for (const auto &gen : gens)
        EXPECT_GT(tlbCoverage(gen, gigaBytes), 1.0);
}

TEST(HwGen, CoverageMath)
{
    const HwGeneration gen{"t", 1.0, std::uint64_t{64} << 30, 1536};
    EXPECT_NEAR(tlbCoverage(gen, std::uint64_t{2} << 20),
                1536.0 * 2.0 / (64.0 * 1024.0), 1e-9);
}

class WalkModelTest : public ::testing::Test
{
  protected:
    static AccessProfile
    smallProfile()
    {
        AccessProfile profile;
        profile.dataBytes = std::uint64_t{768} << 20;
        profile.codeBytes = std::uint64_t{32} << 20;
        profile.dataZipfTheta = 0.5;
        profile.codeZipfTheta = 0.6;
        return profile;
    }

    static constexpr std::uint64_t ops = 30000;
};

TEST_F(WalkModelTest, HugePagesReduceWalkCycles)
{
    const AccessProfile profile = smallProfile();
    const WalkMeasurement base = measureWalkCycles(
        profile, BackingMix{}, BackingMix{}, ops, 1);
    BackingMix huge;
    huge.hugeFraction = 1.0;
    const WalkMeasurement thp =
        measureWalkCycles(profile, huge, huge, ops, 1);
    EXPECT_GT(base.totalWalkFrac(), 0.01);
    EXPECT_LT(thp.totalWalkFrac(), base.totalWalkFrac() * 0.8);
}

TEST_F(WalkModelTest, PartialCoverageLandsBetween)
{
    const AccessProfile profile = smallProfile();
    const WalkMeasurement none = measureWalkCycles(
        profile, BackingMix{}, BackingMix{}, ops, 1);
    BackingMix half;
    half.hugeFraction = 0.5;
    const WalkMeasurement mid =
        measureWalkCycles(profile, half, half, ops, 1);
    BackingMix full;
    full.hugeFraction = 1.0;
    const WalkMeasurement best =
        measureWalkCycles(profile, full, full, ops, 1);
    EXPECT_LT(mid.dataWalkFrac, none.dataWalkFrac);
    EXPECT_GT(mid.dataWalkFrac, best.dataWalkFrac);
}

TEST_F(WalkModelTest, GigaPagesBeatHugePages)
{
    AccessProfile profile = smallProfile();
    profile.dataBytes = std::uint64_t{2} << 30;
    BackingMix huge;
    huge.hugeFraction = 1.0;
    const WalkMeasurement thp =
        measureWalkCycles(profile, huge, huge, ops, 1);
    BackingMix giga = huge;
    giga.gigaPages = 2;
    const WalkMeasurement g =
        measureWalkCycles(profile, giga, huge, ops, 1);
    EXPECT_LE(g.dataWalkFrac, thp.dataWalkFrac);
}

TEST_F(WalkModelTest, MeasurementIsDeterministic)
{
    const AccessProfile profile = smallProfile();
    const WalkMeasurement a = measureWalkCycles(
        profile, BackingMix{}, BackingMix{}, ops, 7);
    const WalkMeasurement b = measureWalkCycles(
        profile, BackingMix{}, BackingMix{}, ops, 7);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.dataWalkCycles, b.dataWalkCycles);
}

TEST_F(WalkModelTest, CpoPositive)
{
    const WalkMeasurement m = measureWalkCycles(
        smallProfile(), BackingMix{}, BackingMix{}, ops, 2);
    EXPECT_GT(m.cpo(), 1.0);
    EXPECT_EQ(m.ops, ops);
}

} // namespace
} // namespace ctg
