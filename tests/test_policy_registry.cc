/**
 * @file
 * Policy registry + spec-grammar suite: the string-named policy
 * table every bench, env overlay and snapshot selects through.
 * Covers the built-in entries, the CTG_POLICY `name[:key=val,...]`
 * grammar under strict-parser discipline (malformed or out-of-range
 * knobs warn and keep the previous value — never clamp, never
 * abort), the grouped ResizeTuning validator, the workload-key
 * vocabulary, the MemPolicy decision-hook defaults, and the
 * semantic split between the dynamic Contiguitas boundary and the
 * ZONE_MOVABLE-style static baseline.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "base/units.hh"
#include "contiguitas/policy.hh"
#include "contiguitas/policy_registry.hh"
#include "fleet/server.hh"
#include "workloads/profile.hh"

namespace ctg
{
namespace
{

// ---------------------------------------------------------------
// Registry table
// ---------------------------------------------------------------

TEST(PolicyRegistry, BuiltInEntriesAreRegistered)
{
    PolicyRegistry &reg = PolicyRegistry::instance();
    for (const char *name :
         {"vanilla", "contiguitas", "contiguitas-nobias",
          "zone-movable"})
        EXPECT_TRUE(reg.has(name)) << name;
    EXPECT_GE(reg.entries().size(), 4u);
    EXPECT_FALSE(reg.has("no-such-policy"));

    PolicyRegistry::Entry entry;
    ASSERT_TRUE(reg.find("contiguitas", &entry));
    EXPECT_EQ(entry.name, "contiguitas");
    EXPECT_FALSE(entry.description.empty());
    EXPECT_TRUE(static_cast<bool>(entry.make));
    EXPECT_TRUE(static_cast<bool>(entry.restore));
    EXPECT_FALSE(reg.find("no-such-policy", &entry));
}

TEST(PolicyRegistry, AddReplacesAndRemoveDrops)
{
    PolicyRegistry &reg = PolicyRegistry::instance();
    PolicyRegistry::Entry base;
    ASSERT_TRUE(reg.find("contiguitas", &base));
    const std::size_t before = reg.entries().size();

    PolicyRegistry::Entry custom;
    custom.name = "test-custom";
    custom.description = "contiguitas under a test alias";
    custom.make = base.make;
    custom.restore = base.restore;
    reg.add(custom);
    EXPECT_TRUE(reg.has("test-custom"));
    EXPECT_EQ(reg.entries().size(), before + 1);

    // add() by the same name replaces in place, never duplicates.
    custom.description = "replaced";
    reg.add(custom);
    EXPECT_EQ(reg.entries().size(), before + 1);
    PolicyRegistry::Entry found;
    ASSERT_TRUE(reg.find("test-custom", &found));
    EXPECT_EQ(found.description, "replaced");

    reg.remove("test-custom");
    EXPECT_FALSE(reg.has("test-custom"));
    EXPECT_EQ(reg.entries().size(), before);
}

TEST(PolicyRegistry, CustomEntryDrivesAServer)
{
    // The add-a-policy path end to end: register a preset-derived
    // entry, run a server selecting it by name, drop it again.
    PolicyRegistry &reg = PolicyRegistry::instance();
    PolicyRegistry::Entry entry;
    entry.name = "test-eager";
    entry.description = "contiguitas with an eager resize cadence";
    entry.make = [](Kernel &kernel, const PolicyConfig &config) {
        ContiguitasConfig preset = config.contiguitas;
        preset.tuning.periodSec = 0.5;
        return std::make_unique<ContiguitasPolicy>(kernel, preset);
    };
    entry.restore = [](Kernel &kernel, const PolicyConfig &config,
                       serde::Reader &in) {
        ContiguitasConfig preset = config.contiguitas;
        preset.tuning.periodSec = 0.5;
        return std::make_unique<ContiguitasPolicy>(kernel, preset,
                                                   in);
    };
    reg.add(entry);

    Server::Config config;
    config.memBytes = 256_MiB;
    config.policy.name = "test-eager";
    config.kind = WorkloadKind::Web;
    config.uptimeSec = 3.0;
    config.seed = 0x7e57;
    Server server(config);
    const ServerScan scan = server.run();
    EXPECT_GT(scan.freePages, 0u);
    EXPECT_NE(dynamic_cast<const ContiguitasPolicy *>(
                  &server.kernel().policy()),
              nullptr);

    reg.remove("test-eager");
    EXPECT_FALSE(reg.has("test-eager"));
}

// ---------------------------------------------------------------
// PolicyConfig + spec grammar
// ---------------------------------------------------------------

TEST(PolicySpec, ResolvedNameDefaultsToVanilla)
{
    PolicyConfig config;
    EXPECT_EQ(config.resolvedName(), "vanilla");
    config.name = "contiguitas";
    EXPECT_EQ(config.resolvedName(), "contiguitas");
}

TEST(PolicySpec, BareNamesParse)
{
    PolicyConfig config;
    EXPECT_TRUE(parsePolicySpec("vanilla", &config));
    EXPECT_EQ(config.name, "vanilla");

    config = {};
    EXPECT_TRUE(parsePolicySpec("contiguitas", &config));
    EXPECT_EQ(config.name, "contiguitas");
    EXPECT_TRUE(config.contiguitas.placementBias);
    EXPECT_FALSE(config.contiguitas.staticBoundary);

    // Empty spec: "not chosen yet", resolved later.
    config = {};
    EXPECT_TRUE(parsePolicySpec("", &config));
    EXPECT_TRUE(config.name.empty());
}

TEST(PolicySpec, UnknownNameIsRefusedNotApplied)
{
    PolicyConfig config;
    EXPECT_FALSE(parsePolicySpec("fancy-policy", &config));
    EXPECT_TRUE(config.name.empty());
    EXPECT_FALSE(parsePolicySpec("fancy-policy:bias=0", &config));
    EXPECT_TRUE(config.contiguitas.placementBias);
}

TEST(PolicySpec, DerivedNamesCarryTheirPresets)
{
    PolicyConfig config;
    EXPECT_TRUE(parsePolicySpec("contiguitas-nobias", &config));
    EXPECT_FALSE(config.contiguitas.placementBias);
    EXPECT_FALSE(config.contiguitas.staticBoundary);

    config = {};
    EXPECT_TRUE(parsePolicySpec("zone-movable", &config));
    EXPECT_TRUE(config.contiguitas.staticBoundary);
    EXPECT_TRUE(config.contiguitas.placementBias);

    // Explicit knobs override the preset (spec order: preset first).
    config = {};
    EXPECT_TRUE(parsePolicySpec("zone-movable:static=0", &config));
    EXPECT_FALSE(config.contiguitas.staticBoundary);
    config = {};
    EXPECT_TRUE(parsePolicySpec("contiguitas-nobias:bias=on",
                                &config));
    EXPECT_TRUE(config.contiguitas.placementBias);
}

TEST(PolicySpec, KnobsApplyAcrossTheGrammar)
{
    PolicyConfig config;
    EXPECT_TRUE(parsePolicySpec(
        "contiguitas:bias=0,hw=on,defrag=4,initial=8192,step=2048,"
        "period=0.5,max=4096,watermark=0.2,slack=0.5",
        &config));
    EXPECT_FALSE(config.contiguitas.placementBias);
    EXPECT_TRUE(config.contiguitas.hwMigration);
    EXPECT_EQ(config.contiguitas.defragBlocksPerTick, 4u);
    EXPECT_EQ(config.contiguitas.region.initialUnmovablePages,
              8192u);
    EXPECT_EQ(config.contiguitas.tuning.stepPages, 2048u);
    EXPECT_DOUBLE_EQ(config.contiguitas.tuning.periodSec, 0.5);
    EXPECT_EQ(config.contiguitas.tuning.maxPerTick, 4096u);
    EXPECT_DOUBLE_EQ(config.contiguitas.tuning.unmovFreeWatermark,
                     0.2);
    EXPECT_DOUBLE_EQ(config.contiguitas.tuning.shrinkFreeSlack, 0.5);
}

TEST(PolicySpec, MalformedKnobsAreSkippedNotClamped)
{
    PolicyConfig config;
    // Bad bool, bad u64, pair without '=', empty key, unknown key:
    // each is skipped; the good knob in the middle still applies.
    EXPECT_TRUE(parsePolicySpec(
        "contiguitas:bias=2,defrag=abc,hw=1,loose,=5,zzz=1",
        &config));
    EXPECT_TRUE(config.contiguitas.placementBias);
    EXPECT_EQ(config.contiguitas.defragBlocksPerTick, 0u);
    EXPECT_TRUE(config.contiguitas.hwMigration);
    // Signed and trailing-junk numbers are rejected, not truncated.
    config = {};
    EXPECT_TRUE(parsePolicySpec("contiguitas:defrag=-1,initial=12x",
                                &config));
    EXPECT_EQ(config.contiguitas.defragBlocksPerTick, 0u);
    EXPECT_EQ(config.contiguitas.region.initialUnmovablePages, 0u);
}

// ---------------------------------------------------------------
// ResizeTuning: one validated parser, no silent clamping
// ---------------------------------------------------------------

TEST(ResizeTuningSet, AcceptsInRangeValues)
{
    ResizeTuning tuning;
    EXPECT_TRUE(tuning.set("period", "2.5"));
    EXPECT_DOUBLE_EQ(tuning.periodSec, 2.5);
    EXPECT_TRUE(tuning.set("step", "1024"));
    EXPECT_EQ(tuning.stepPages, 1024u);
    EXPECT_TRUE(tuning.set("max", "65536"));
    EXPECT_EQ(tuning.maxPerTick, 65536u);
    EXPECT_TRUE(tuning.set("watermark", "0.5"));
    EXPECT_DOUBLE_EQ(tuning.unmovFreeWatermark, 0.5);
    EXPECT_TRUE(tuning.set("slack", "0"));
    EXPECT_DOUBLE_EQ(tuning.shrinkFreeSlack, 0.0);
}

TEST(ResizeTuningSet, OutOfRangeKeepsPreviousValue)
{
    ResizeTuning tuning;
    const ResizeTuning defaults;
    for (const char *bad : {"0", "-1", "3601", "nan", "1e", ""})
        EXPECT_FALSE(tuning.set("period", bad)) << bad;
    EXPECT_DOUBLE_EQ(tuning.periodSec, defaults.periodSec);
    for (const char *bad : {"0", "-4", "4k", ""})
        EXPECT_FALSE(tuning.set("step", bad)) << bad;
    EXPECT_EQ(tuning.stepPages, defaults.stepPages);
    EXPECT_FALSE(tuning.set("max", "0"));
    EXPECT_EQ(tuning.maxPerTick, defaults.maxPerTick);
    for (const char *bad : {"0.51", "-0.1", "half"})
        EXPECT_FALSE(tuning.set("watermark", bad)) << bad;
    EXPECT_DOUBLE_EQ(tuning.unmovFreeWatermark,
                     defaults.unmovFreeWatermark);
    for (const char *bad : {"1.5", "-0.25"})
        EXPECT_FALSE(tuning.set("slack", bad)) << bad;
    EXPECT_DOUBLE_EQ(tuning.shrinkFreeSlack,
                     defaults.shrinkFreeSlack);
    EXPECT_FALSE(tuning.set("cadence", "1"));
}

// ---------------------------------------------------------------
// Workload vocabulary
// ---------------------------------------------------------------

TEST(WorkloadVocabulary, KeysRoundTripThroughTheParser)
{
    for (unsigned k = 0; k < numWorkloadKinds; ++k) {
        const auto kind = static_cast<WorkloadKind>(k);
        WorkloadKind parsed = WorkloadKind::Web;
        ASSERT_TRUE(parseWorkloadKind(workloadKey(kind), &parsed))
            << workloadKey(kind);
        EXPECT_EQ(parsed, kind);
    }
    WorkloadKind parsed = WorkloadKind::CacheA;
    EXPECT_FALSE(parseWorkloadKind("warehouse", &parsed));
    EXPECT_FALSE(parseWorkloadKind("", &parsed));
    EXPECT_FALSE(parseWorkloadKind("Web", &parsed)); // exact match
    EXPECT_EQ(parsed, WorkloadKind::CacheA);         // untouched
}

TEST(WorkloadVocabulary, AgingProfilesDifferFromThePaperSix)
{
    // The Mansi-&-Swift-calibrated generators must be real new
    // profiles, not renames: distinct keys and distinct footprints.
    const std::uint64_t mem = 512_MiB;
    const WorkloadProfile web = makeProfile(WorkloadKind::Web, mem);
    const WorkloadProfile aging =
        makeProfile(WorkloadKind::Aging, mem);
    const WorkloadProfile fs =
        makeProfile(WorkloadKind::FsCacheHeavy, mem);
    const WorkloadProfile bursty =
        makeProfile(WorkloadKind::UnmovableBursty, mem);
    EXPECT_NE(aging.residentFrac, web.residentFrac);
    EXPECT_LT(fs.residentFrac, web.residentFrac);
    EXPECT_GT(bursty.pinRatePerSec, web.pinRatePerSec);
}

// ---------------------------------------------------------------
// MemPolicy decision hooks
// ---------------------------------------------------------------

TEST(PolicyHooks, VanillaDefaultsAreNeutral)
{
    Server::Config config;
    config.memBytes = 128_MiB;
    config.policy.name = "vanilla";
    config.uptimeSec = 1.0;
    Server server(config);
    const MemPolicy &policy = server.kernel().policy();

    AllocRequest req;
    req.mt = MigrateType::Unmovable;
    req.lifetime = Lifetime::Immortal;
    EXPECT_EQ(policy.placementPref(req), AddrPref::None);
    EXPECT_EQ(policy.pinPlacementPref(), AddrPref::None);
    EXPECT_EQ(policy.compactUntilTarget(5u), 5u);
    EXPECT_EQ(policy.defragBudgetPerTick(), 0u);
}

TEST(PolicyHooks, ContiguitasBiasFlowsThroughTheHooks)
{
    Server::Config config;
    config.memBytes = 128_MiB;
    config.policy.name = "contiguitas";
    config.uptimeSec = 1.0;
    config.policy.contiguitas.defragBlocksPerTick = 3;
    Server server(config);
    const MemPolicy &policy = server.kernel().policy();

    AllocRequest req;
    req.mt = MigrateType::Unmovable;
    req.lifetime = Lifetime::Immortal;
    EXPECT_EQ(policy.placementPref(req), AddrPref::Low);
    req.mt = MigrateType::Movable;
    EXPECT_EQ(policy.placementPref(req), AddrPref::None);
    EXPECT_EQ(policy.pinPlacementPref(), AddrPref::High);
    EXPECT_EQ(policy.defragBudgetPerTick(), 3u);

    // The nobias preset neutralizes both placement hooks.
    Server::Config nobias = config;
    nobias.policy.name = "contiguitas-nobias";
    nobias.policy.contiguitas.defragBlocksPerTick = 0;
    Server nb(nobias);
    const MemPolicy &nbPolicy = nb.kernel().policy();
    req.mt = MigrateType::Unmovable;
    EXPECT_EQ(nbPolicy.placementPref(req), AddrPref::None);
    EXPECT_EQ(nbPolicy.pinPlacementPref(), AddrPref::None);
}

// ---------------------------------------------------------------
// Static split vs dynamic boundary
// ---------------------------------------------------------------

TEST(StaticBoundary, ZoneMovableNeverResizesUnderPressure)
{
    // Same machine, same demand: a kernel-object-heavy service whose
    // unmovable footprint outgrows the initial split. Contiguitas
    // expands the region (urgent expansions fire); the ZONE_MOVABLE
    // baseline must hold its boundary exactly and fail the excess
    // instead.
    Server::Config config;
    config.memBytes = 1024_MiB;
    config.kind = WorkloadKind::UnmovableBursty;
    config.uptimeSec = 15.0;
    config.seed = 0x5417c;

    config.policy.name = "contiguitas";
    Server dynamic(config);
    dynamic.run();
    const auto *dyn = dynamic_cast<const ContiguitasPolicy *>(
        &dynamic.kernel().policy());
    ASSERT_NE(dyn, nullptr);

    config.policy.name = "zone-movable";
    Server fixed(config);
    fixed.run();
    const auto *zm = dynamic_cast<const ContiguitasPolicy *>(
        &fixed.kernel().policy());
    ASSERT_NE(zm, nullptr);

    EXPECT_GT(dyn->regions().boundary(), zm->regions().boundary());
    EXPECT_GT(dyn->stats().urgentExpansions +
                  dyn->stats().controllerExpands,
              0u);
    EXPECT_EQ(zm->stats().urgentExpansions, 0u);
    EXPECT_EQ(zm->stats().controllerExpands, 0u);
    EXPECT_EQ(zm->stats().controllerShrinks, 0u);
    // Both keep confinement: the boundary bounds the unmovable set.
    EXPECT_EQ(zm->unmovableRegion().first, 0u);
    EXPECT_EQ(zm->unmovableRegion().second,
              zm->regions().boundary());
}

} // namespace
} // namespace ctg
