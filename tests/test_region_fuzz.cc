/**
 * @file
 * Randomized region-manager workout: interleaved confined
 * allocations, frees, pins, expansions, shrinks and defrag runs,
 * with the confinement theorem, buddy invariants and accounting
 * checked throughout. Also sweeps the Algorithm 1 controller over a
 * pressure grid for monotonicity properties.
 */

#include <gtest/gtest.h>

#include "base/rng.hh"
#include "base/units.hh"
#include "contiguitas/region_manager.hh"
#include "contiguitas/resize_controller.hh"
#include "kernel/owner.hh"

namespace ctg
{
namespace
{

/** Relocatable owner for the IO-page population of the fuzz. */
class FuzzIoOwner : public PageOwnerClient
{
  public:
    std::unordered_map<std::uint64_t, Pfn> where;

    bool
    relocate(std::uint64_t tag, Pfn old_head, Pfn new_head) override
    {
        auto it = where.find(tag);
        if (it == where.end() || it->second != old_head)
            return false;
        it->second = new_head;
        return true;
    }
};

class RegionFuzz : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(RegionFuzz, InvariantsUnderRandomOps)
{
    PhysMem mem(256_MiB);
    OwnerRegistry owners;
    RegionManager::Config config;
    config.initialUnmovablePages = (32_MiB) / pageBytes;
    config.minUnmovablePages = (8_MiB) / pageBytes;
    RegionManager regions(mem, owners, config);
    regions.enableHwMigration();

    FuzzIoOwner io;
    const std::uint16_t cid = owners.registerClient(&io);
    Rng rng(GetParam());

    std::vector<Pfn> kernel_pages; // unowned, truly unmovable
    std::vector<std::uint64_t> io_tags;
    std::uint64_t next_tag = 1;

    for (int step = 0; step < 3000; ++step) {
        const double dice = rng.uniform();
        if (dice < 0.3) {
            // Kernel allocation (never movable).
            const Pfn p = regions.unmovable().allocPages(
                0, MigrateType::Unmovable, AllocSource::Slab, 0,
                AddrPref::Low);
            if (p != invalidPfn)
                kernel_pages.push_back(p);
        } else if (dice < 0.55) {
            // IO buffer (relocatable + pinned).
            const std::uint64_t tag = next_tag++;
            const Pfn p = regions.unmovable().allocPages(
                0, MigrateType::Unmovable, AllocSource::Networking,
                OwnerRegistry::makeOwner(cid, tag), AddrPref::High);
            if (p != invalidPfn) {
                mem.setRangePinned(p, p + 1, true);
                io.where[tag] = p;
                io_tags.push_back(tag);
            }
        } else if (dice < 0.75) {
            // Free something.
            if (rng.chance(0.5) && !kernel_pages.empty()) {
                const std::size_t i =
                    rng.below(kernel_pages.size());
                regions.unmovable().freePages(kernel_pages[i]);
                kernel_pages[i] = kernel_pages.back();
                kernel_pages.pop_back();
            } else if (!io_tags.empty()) {
                const std::size_t i = rng.below(io_tags.size());
                const std::uint64_t tag = io_tags[i];
                regions.unmovable().freePages(io.where.at(tag));
                io.where.erase(tag);
                io_tags[i] = io_tags.back();
                io_tags.pop_back();
            }
        } else if (dice < 0.85) {
            regions.expandUnmovable((4_MiB) / pageBytes);
        } else if (dice < 0.95) {
            regions.shrinkUnmovable((4_MiB) / pageBytes);
        } else {
            regions.defragUnmovable(8);
        }

        if (step % 250 == 0) {
            regions.unmovable().checkInvariants();
            regions.movable().checkInvariants();
            regions.checkConfinement();
            // Regions tile the machine.
            ASSERT_EQ(regions.unmovable().totalPages() +
                          regions.movable().totalPages(),
                      mem.numFrames());
            ASSERT_EQ(regions.unmovable().endPfn(),
                      regions.movable().startPfn());
            // The IO owner's records always point at live pinned
            // pages inside the unmovable region.
            for (const auto &[tag, pfn] : io.where) {
                ASSERT_LT(pfn, regions.boundary());
                ASSERT_TRUE(mem.frame(pfn).isPinned());
                ASSERT_FALSE(mem.frame(pfn).isFree());
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegionFuzz,
                         ::testing::Values(1, 7, 1234, 0xbeef));

/** Algorithm 1 sweep: parameterized over pressure grids. */
class ControllerSweep
    : public ::testing::TestWithParam<std::tuple<double, double>>
{};

TEST_P(ControllerSweep, TargetsRespectDirectionAndBounds)
{
    const auto [p_unmov, p_mov] = GetParam();
    ResizeController ctrl{ResizeParams{}};
    const std::uint64_t size = 100000;
    const ResizeDecision d = ctrl.evaluate(p_unmov, p_mov, size);
    switch (d.direction) {
      case ResizeDirection::Expand:
        EXPECT_GT(d.targetPages, size);
        EXPECT_LE(d.targetPages, 2 * size);
        // Expansion only under the Algorithm 1 guard.
        EXPECT_GE(p_unmov, ResizeParams{}.thresholdUnmov);
        EXPECT_LT(p_mov, ResizeParams{}.thresholdMov);
        break;
      case ResizeDirection::Shrink:
        EXPECT_LT(d.targetPages, size);
        break;
      case ResizeDirection::None:
        break;
    }
    EXPECT_GE(d.factor, 0.0);
    EXPECT_LE(d.factor, ResizeParams{}.maxFactor);
}

INSTANTIATE_TEST_SUITE_P(
    PressureGrid, ControllerSweep,
    ::testing::Combine(::testing::Values(0.0, 1.0, 5.0, 20.0, 80.0),
                       ::testing::Values(0.0, 1.0, 5.0, 20.0,
                                         80.0)));

TEST(ControllerMonotonic, ExpandTargetGrowsWithUnmovPressure)
{
    ResizeController ctrl{ResizeParams{}};
    std::uint64_t last = 0;
    for (const double p : {6.0, 10.0, 20.0, 40.0, 80.0}) {
        const ResizeDecision d = ctrl.evaluate(p, 0.0, 100000);
        ASSERT_EQ(d.direction, ResizeDirection::Expand);
        EXPECT_GE(d.targetPages, last);
        last = d.targetPages;
    }
}

TEST(ControllerMonotonic, ShrinkTargetFallsWithMovPressure)
{
    ResizeController ctrl{ResizeParams{}};
    std::uint64_t last = ~std::uint64_t{0};
    for (const double p : {6.0, 10.0, 20.0, 40.0, 80.0}) {
        const ResizeDecision d = ctrl.evaluate(0.0, p, 100000);
        ASSERT_EQ(d.direction, ResizeDirection::Shrink);
        EXPECT_LE(d.targetPages, last);
        last = d.targetPages;
    }
}

} // namespace
} // namespace ctg
