/**
 * @file
 * Contiguity-scanner tests against hand-crafted layouts with known
 * ground-truth metrics.
 */

#include <gtest/gtest.h>

#include "base/units.hh"
#include "mem/buddy.hh"
#include "mem/mem_stats.hh"
#include "mem/scanner.hh"

namespace ctg
{
namespace
{

class ScannerTest : public ::testing::Test
{
  protected:
    ScannerTest()
        : mem(64_MiB), buddy(mem, 0, mem.numFrames(), "scan")
    {}

    /** Allocate the exact page at the head of the free lists until
     * the target block is covered; returns allocated heads. */
    std::vector<Pfn>
    fillPages(std::uint64_t count, MigrateType mt)
    {
        std::vector<Pfn> pages;
        for (std::uint64_t i = 0; i < count; ++i) {
            const Pfn p = buddy.allocPages(0, mt, AllocSource::User,
                                           0, AddrPref::Low);
            EXPECT_NE(p, invalidPfn);
            pages.push_back(p);
        }
        return pages;
    }

    PhysMem mem;
    BuddyAllocator buddy;
};

TEST_F(ScannerTest, EmptyMemoryIsFullyContiguous)
{
    EXPECT_DOUBLE_EQ(mem.stats().freeContiguityFraction(
        0, mem.numFrames(), scan::order2M),
                     1.0);
    EXPECT_DOUBLE_EQ(mem.stats().unmovableBlockFraction(
        0, mem.numFrames(), scan::order2M),
                     0.0);
    EXPECT_DOUBLE_EQ(mem.stats().potentialContiguityFraction(
        0, mem.numFrames(), scan::order2M),
                     1.0);
    EXPECT_DOUBLE_EQ(
        mem.stats().unmovablePageRatio(0, mem.numFrames()), 0.0);
    EXPECT_EQ(mem.stats().freePages(0, mem.numFrames()),
              mem.numFrames());
}

TEST_F(ScannerTest, OneUnmovablePagePerBlockCountsEveryBlock)
{
    // 64 MiB = 32 pageblocks. Put one unmovable page in each.
    const std::uint64_t blocks =
        mem.numFrames() / pagesPerHuge;
    std::vector<Pfn> keep;
    std::vector<Pfn> trash;
    for (std::uint64_t b = 0; b < blocks; ++b) {
        // Allocate until a page lands in block b, then keep it.
        while (true) {
            const Pfn p = buddy.allocPages(
                0, MigrateType::Unmovable, AllocSource::Slab, 0,
                AddrPref::Low);
            ASSERT_NE(p, invalidPfn);
            if (PhysMem::blockIndex(p) == b) {
                keep.push_back(p);
                break;
            }
            trash.push_back(p);
        }
    }
    for (const Pfn p : trash)
        buddy.freePages(p);

    EXPECT_DOUBLE_EQ(mem.stats().unmovableBlockFraction(
        0, mem.numFrames(), scan::order2M),
                     1.0);
    EXPECT_NEAR(mem.stats().unmovablePageRatio(0, mem.numFrames()),
                static_cast<double>(blocks) /
                    static_cast<double>(mem.numFrames()),
                1e-9);
    // Perfect compaction recovers nothing at 2 MB.
    EXPECT_DOUBLE_EQ(mem.stats().potentialContiguityFraction(
        0, mem.numFrames(), scan::order2M),
                     0.0);
}

TEST_F(ScannerTest, MovablePagesDontCountAsUnmovable)
{
    // 100 pages only partially fill a pageblock, leaving free pages
    // outside any fully-free 2 MB block.
    auto pages = fillPages(100, MigrateType::Movable);
    EXPECT_DOUBLE_EQ(
        mem.stats().unmovablePageRatio(0, mem.numFrames()), 0.0);
    // Potential contiguity is unaffected by movable pages.
    EXPECT_DOUBLE_EQ(mem.stats().potentialContiguityFraction(
        0, mem.numFrames(), scan::order2M),
                     1.0);
    // Free contiguity IS affected.
    EXPECT_LT(mem.stats().freeContiguityFraction(0, mem.numFrames(),
                                           scan::order2M),
              1.0);
}

TEST_F(ScannerTest, PinnedMovablePageCountsAsUnmovable)
{
    const Pfn p = buddy.allocPages(0, MigrateType::Movable,
                                   AllocSource::User);
    mem.setRangePinned(p, p + 1, true);
    EXPECT_GT(mem.stats().unmovablePageRatio(0, mem.numFrames()),
              0.0);
    EXPECT_GT(mem.stats().unmovableBlockFraction(
        0, mem.numFrames(), scan::order2M),
              0.0);
}

TEST_F(ScannerTest, SourceBreakdownMatchesAllocations)
{
    auto net = fillPages(100, MigrateType::Unmovable);
    for (const Pfn p : net) {
        mem.frame(p).setSource(AllocSource::Networking);
        mem.noteFramesChanged(p, p + 1);
    }
    auto slab = fillPages(50, MigrateType::Unmovable);
    for (const Pfn p : slab) {
        mem.frame(p).setSource(AllocSource::Slab);
        mem.noteFramesChanged(p, p + 1);
    }

    const auto counts =
        mem.stats().unmovableBySource(0, mem.numFrames());
    EXPECT_EQ(counts[static_cast<unsigned>(AllocSource::Networking)],
              100u);
    EXPECT_EQ(counts[static_cast<unsigned>(AllocSource::Slab)], 50u);
    EXPECT_EQ(counts[static_cast<unsigned>(AllocSource::User)], 0u);
}

TEST_F(ScannerTest, FreeAlignedBlockCounts)
{
    EXPECT_EQ(mem.stats().freeAlignedBlocks(0, mem.numFrames(),
                                      scan::order2M),
              mem.numFrames() / pagesPerHuge);
    // Allocate one page: exactly one block stops being free.
    const Pfn p = buddy.allocPages(0, MigrateType::Movable,
                                   AllocSource::User);
    (void)p;
    EXPECT_EQ(mem.stats().freeAlignedBlocks(0, mem.numFrames(),
                                      scan::order2M),
              mem.numFrames() / pagesPerHuge - 1);
}

TEST_F(ScannerTest, MeanFreeShareOfContaminatedBlocks)
{
    // One unmovable page in the first block; rest of the block free.
    const Pfn p = buddy.allocPages(0, MigrateType::Unmovable,
                                   AllocSource::Slab, 0,
                                   AddrPref::Low);
    ASSERT_LT(p, pagesPerHuge);
    const double share = mem.stats().meanFreeShareOfUnmovableBlocks(
        0, mem.numFrames());
    EXPECT_NEAR(share,
                static_cast<double>(pagesPerHuge - 1) /
                    static_cast<double>(pagesPerHuge),
                1e-9);
}

TEST_F(ScannerTest, SubrangeScans)
{
    // Contaminate only the upper half; lower-half scans stay clean.
    const Pfn half = mem.numFrames() / 2;
    const Pfn p = buddy.allocPages(0, MigrateType::Unmovable,
                                   AllocSource::Slab, 0,
                                   AddrPref::High);
    ASSERT_GE(p, half);
    EXPECT_DOUBLE_EQ(
        mem.stats().unmovablePageRatio(0, half), 0.0);
    EXPECT_GT(mem.stats().unmovablePageRatio(half, mem.numFrames()),
              0.0);
}

} // namespace
} // namespace ctg
