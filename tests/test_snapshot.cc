/**
 * @file
 * Checkpoint/restore suite: serde container unit tests, CTG_* env
 * parser strictness, fault-site table hygiene, snapshot round-trip
 * property tests (churn → checkpoint → restore → audit →
 * bit-identical continuation at several thread counts), and a
 * restore-path chaos family where every snapshot-I/O fault site must
 * surface as a *detected* failure that degrades to a cold start.
 *
 * Own binary: these tests mutate the process-wide fault injector and
 * CTG_* environment variables, so they must not share a process with
 * the main suite.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "base/env_config.hh"
#include "base/serde.hh"
#include "base/units.hh"
#include "fleet/fleet.hh"
#include "fleet/server.hh"
#include "mem/auditor.hh"
#include "sim/fault_injector.hh"
#include "sim/snapshot.hh"

namespace ctg
{
namespace
{

std::uint64_t
bits(double v)
{
    std::uint64_t out;
    std::memcpy(&out, &v, sizeof(out));
    return out;
}

/** Flatten a scan to bit patterns so "bit-identical" is literal. */
std::vector<std::uint64_t>
scanBits(const ServerScan &scan)
{
    std::vector<std::uint64_t> out;
    for (const double v : scan.freeContiguity)
        out.push_back(bits(v));
    for (const double v : scan.unmovableBlocks)
        out.push_back(bits(v));
    for (const double v : scan.potentialContiguity)
        out.push_back(bits(v));
    out.push_back(bits(scan.unmovablePageRatio));
    for (const std::uint64_t v : scan.bySource)
        out.push_back(v);
    out.push_back(scan.freePages);
    out.push_back(scan.free2mBlocks);
    out.push_back(bits(scan.unmovableRegionFreeShare));
    out.push_back(bits(scan.uptimeSec));
    return out;
}

std::vector<std::uint64_t>
scansBits(const std::vector<ServerScan> &scans)
{
    std::vector<std::uint64_t> out;
    for (const ServerScan &scan : scans) {
        const std::vector<std::uint64_t> one = scanBits(scan);
        out.insert(out.end(), one.begin(), one.end());
    }
    return out;
}

/** Fresh scratch directory under the test temp root. */
std::string
scratchDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + "ctgsnap_" + name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

// ---------------------------------------------------------------
// serde container
// ---------------------------------------------------------------

TEST(SerdeTest, PrimitivesRoundTripBitExactly)
{
    serde::Writer w;
    w.putU8(0xab);
    w.putU16(0xbeef);
    w.putU32(0xdeadbeef);
    w.putU64(0x0123456789abcdefULL);
    w.putBool(true);
    w.putBool(false);
    w.putDouble(-0.0);
    w.putDouble(1.0 / 3.0);
    w.putString("contiguitas");
    w.putRngState({1, 2, 3, 0xffffffffffffffffULL});
    w.putPodVector(std::vector<std::uint64_t>{5, 6, 7});

    serde::Reader r(w.bytes());
    EXPECT_EQ(r.getU8(), 0xab);
    EXPECT_EQ(r.getU16(), 0xbeef);
    EXPECT_EQ(r.getU32(), 0xdeadbeefu);
    EXPECT_EQ(r.getU64(), 0x0123456789abcdefULL);
    EXPECT_TRUE(r.getBool());
    EXPECT_FALSE(r.getBool());
    EXPECT_EQ(bits(r.getDouble()), bits(-0.0));
    EXPECT_EQ(bits(r.getDouble()), bits(1.0 / 3.0));
    EXPECT_EQ(r.getString(), "contiguitas");
    const auto state = r.getRngState();
    EXPECT_EQ(state[3], 0xffffffffffffffffULL);
    EXPECT_EQ(r.getPodVector<std::uint64_t>(),
              (std::vector<std::uint64_t>{5, 6, 7}));
    EXPECT_TRUE(r.atEnd());
}

TEST(SerdeTest, TruncatedInputThrows)
{
    serde::Writer w;
    w.putU64(1);
    serde::Reader r(w.bytes().data(), 4);
    EXPECT_THROW(r.getU64(), serde::Error);
}

TEST(SerdeTest, BoolByteOutOfRangeThrows)
{
    const std::uint8_t byte = 2;
    serde::Reader r(&byte, 1);
    EXPECT_THROW(r.getBool(), serde::Error);
}

TEST(SerdeTest, PodVectorCountBeyondPayloadThrows)
{
    serde::Writer w;
    w.putU64(1u << 20); // claims a million elements, provides none
    serde::Reader r(w.bytes());
    EXPECT_THROW(r.getPodVector<std::uint64_t>(), serde::Error);
}

TEST(SerdeTest, SectionRoundTripAndCrcDetection)
{
    serde::Writer w;
    w.beginSection(7);
    w.putU64(42);
    w.putString("payload");
    w.endSection();
    w.beginSection(9);
    w.endSection();

    {
        serde::Reader r(w.bytes());
        serde::Reader::Section s = r.nextSection();
        EXPECT_EQ(s.id, 7u);
        EXPECT_EQ(s.payload.getU64(), 42u);
        EXPECT_EQ(s.payload.getString(), "payload");
        EXPECT_TRUE(s.payload.atEnd());
        serde::Reader::Section s2 = r.nextSection();
        EXPECT_EQ(s2.id, 9u);
        EXPECT_TRUE(s2.payload.atEnd());
        EXPECT_TRUE(r.atEnd());
    }

    // Any flipped payload bit must be a detected CRC mismatch.
    std::vector<std::uint8_t> corrupt = w.bytes();
    corrupt[16 + 4] ^= 0x01; // inside the first section's payload
    serde::Reader r(corrupt);
    EXPECT_THROW(r.nextSection(), serde::Error);
}

TEST(SerdeTest, SectionTruncationThrows)
{
    serde::Writer w;
    w.beginSection(1);
    w.putU64(1);
    w.endSection();
    std::vector<std::uint8_t> torn = w.bytes();
    torn.resize(torn.size() / 2);
    serde::Reader r(torn);
    EXPECT_THROW(r.nextSection(), serde::Error);
}

// ---------------------------------------------------------------
// CTG_* environment parser strictness
// ---------------------------------------------------------------

/** Scoped environment override. */
class EnvVar
{
  public:
    EnvVar(const char *name, const char *value) : name_(name)
    {
        setenv(name, value, 1);
    }
    ~EnvVar() { unsetenv(name_); }

  private:
    const char *name_;
};

TEST(EnvStrictTest, ThreadsParserRejectsMalformed)
{
    {
        const EnvVar v("CTG_THREADS", "4");
        EXPECT_EQ(sim::EnvConfig::fromEnv().threads, 4u);
    }
    for (const char *bad : {"abc", "4x", "", "0", "-2"}) {
        const EnvVar v("CTG_THREADS", bad);
        EXPECT_EQ(sim::EnvConfig::fromEnv().threads, 0u)
            << "CTG_THREADS='" << bad << "'";
    }
}

TEST(EnvStrictTest, Fig11PopulationParserRejectsMalformed)
{
    {
        const EnvVar v("CTG_FIG11_POP", "12");
        EXPECT_EQ(sim::EnvConfig::fromEnv().fig11Population, 12u);
    }
    for (const char *bad : {"dozen", "12q", "0", ""}) {
        const EnvVar v("CTG_FIG11_POP", bad);
        EXPECT_EQ(sim::EnvConfig::fromEnv().fig11Population, 8u)
            << "CTG_FIG11_POP='" << bad << "'";
    }
}

TEST(EnvStrictTest, FaultSeedParserRejectsMalformed)
{
    {
        const EnvVar v("CTG_FAULTS_SEED", "0x123");
        const sim::EnvConfig config = sim::EnvConfig::fromEnv();
        EXPECT_TRUE(config.hasFaultSeed);
        EXPECT_EQ(config.faultSeed, 0x123u);
    }
    for (const char *bad : {"12nope", "seed"}) {
        const EnvVar v("CTG_FAULTS_SEED", bad);
        EXPECT_FALSE(sim::EnvConfig::fromEnv().hasFaultSeed)
            << "CTG_FAULTS_SEED='" << bad << "'";
    }
}

TEST(EnvStrictTest, BoolParsersAcceptOnlyDocumentedSpellings)
{
    struct Knob
    {
        const char *var;
        bool sim::EnvConfig::*field;
        bool defaultValue;
    };
    const Knob knobs[] = {
        {"CTG_STREAM_SCANS", &sim::EnvConfig::streamScans, false},
        {"CTG_CONTIG_INDEX", &sim::EnvConfig::contigIndexReads,
         true},
        {"CTG_EXACT_PREF", &sim::EnvConfig::exactPref, false},
    };
    for (const Knob &knob : knobs) {
        for (const char *yes : {"1", "on", "ON", "true", "yes"}) {
            const EnvVar v(knob.var, yes);
            EXPECT_TRUE(sim::EnvConfig::fromEnv().*knob.field)
                << knob.var << "='" << yes << "'";
        }
        for (const char *no : {"0", "off", "OFF", "false", "no"}) {
            const EnvVar v(knob.var, no);
            EXPECT_FALSE(sim::EnvConfig::fromEnv().*knob.field)
                << knob.var << "='" << no << "'";
        }
        // The historical parser treated any other string as true;
        // now a typo must keep the default, not enable the knob.
        for (const char *bad : {"ture", "2", "", "On"}) {
            const EnvVar v(knob.var, bad);
            EXPECT_EQ(sim::EnvConfig::fromEnv().*knob.field,
                      knob.defaultValue)
                << knob.var << "='" << bad << "'";
        }
    }
}

TEST(EnvStrictTest, CheckpointAndRestoreDirsPassThrough)
{
    EXPECT_TRUE(sim::EnvConfig::fromEnv().checkpointDir.empty());
    EXPECT_TRUE(sim::EnvConfig::fromEnv().restoreDir.empty());
    const EnvVar c("CTG_CHECKPOINT", "/tmp/ck");
    const EnvVar r("CTG_RESTORE", "/tmp/rs");
    const sim::EnvConfig config = sim::EnvConfig::fromEnv();
    EXPECT_EQ(config.checkpointDir, "/tmp/ck");
    EXPECT_EQ(config.restoreDir, "/tmp/rs");
}

// ---------------------------------------------------------------
// Fault-site table hygiene
// ---------------------------------------------------------------

TEST(FaultSiteTableTest, EverySiteRoundTripsThroughSpecParsing)
{
    for (unsigned i = 0; i < numFaultSites; ++i) {
        const auto site = static_cast<FaultSite>(i);
        const char *name = FaultInjector::siteName(site);
        ASSERT_NE(name, nullptr);
        ASSERT_GT(std::strlen(name), 0u);

        FaultSite parsed;
        ASSERT_TRUE(FaultInjector::siteFromName(name, &parsed))
            << name;
        EXPECT_EQ(parsed, site);

        // The CTG_FAULTS spec syntax must reach the same site.
        FaultInjector inj(1);
        EXPECT_TRUE(inj.configure(std::string(name) + ":once"))
            << name;
        EXPECT_TRUE(inj.armed(site)) << name;
    }
}

TEST(FaultSiteTableTest, SiteNamesAreUnique)
{
    for (unsigned i = 0; i < numFaultSites; ++i)
        for (unsigned j = i + 1; j < numFaultSites; ++j)
            EXPECT_STRNE(
                FaultInjector::siteName(static_cast<FaultSite>(i)),
                FaultInjector::siteName(static_cast<FaultSite>(j)));
}

TEST(FaultSiteTableTest, RestoredInjectorContinuesFiringPattern)
{
    FaultInjector a(0x5eed);
    a.arm(FaultSite::BuddyAllocFail, FaultSpec::chance(0.3));
    a.arm(FaultSite::ChwMidcopyAbort, FaultSpec::everyNth(7));
    a.arm(FaultSite::RegionEvacFail, FaultSpec::oneShot(40));
    for (int i = 0; i < 25; ++i) {
        a.shouldFail(FaultSite::BuddyAllocFail);
        a.shouldFail(FaultSite::ChwMidcopyAbort);
        a.shouldFail(FaultSite::RegionEvacFail);
    }

    serde::Writer w;
    a.saveTo(w);
    FaultInjector b(0);
    serde::Reader r(w.bytes());
    b.loadFrom(r);
    EXPECT_TRUE(r.atEnd());

    for (int i = 0; i < 200; ++i) {
        for (const FaultSite site :
             {FaultSite::BuddyAllocFail, FaultSite::ChwMidcopyAbort,
              FaultSite::RegionEvacFail,
              FaultSite::MigrateDstFail}) {
            EXPECT_EQ(a.shouldFail(site), b.shouldFail(site));
        }
    }
    EXPECT_EQ(a.totalFires(), b.totalFires());
}

TEST(FaultSiteTableTest, LoadRejectsAlienSiteCount)
{
    FaultInjector a(1);
    serde::Writer w;
    a.saveTo(w);
    std::vector<std::uint8_t> bytes = w.bytes();
    bytes[0] ^= 0x40; // site count field
    FaultInjector b(0);
    serde::Reader r(bytes);
    EXPECT_THROW(b.loadFrom(r), serde::Error);
}

// ---------------------------------------------------------------
// Snapshot container + manifest
// ---------------------------------------------------------------

TEST(SnapshotContainerTest, HeaderVersionSkewIsDetected)
{
    serde::Writer w;
    snap::beginImage(w);
    {
        serde::Reader r(w.bytes());
        EXPECT_NO_THROW(snap::openImage(r));
    }
    std::vector<std::uint8_t> skewed = w.bytes();
    skewed[4] += 1;
    serde::Reader r(skewed);
    EXPECT_THROW(snap::openImage(r), serde::Error);

    std::vector<std::uint8_t> alien = w.bytes();
    alien[0] = 'X';
    serde::Reader r2(alien);
    EXPECT_THROW(snap::openImage(r2), serde::Error);
}

TEST(SnapshotContainerTest, ManifestRoundTripAndValidation)
{
    faultInjector().reset();
    const std::string dir = scratchDir("manifest");
    const std::vector<std::uint8_t> bytes = {1, 2, 3, 4, 5};

    snap::Manifest manifest;
    manifest.fleetFingerprint = 0xfeedface12345678ULL;
    snap::ManifestEntry entry;
    entry.server = 3;
    entry.file = snap::snapshotFileName(3);
    entry.bytes = bytes.size();
    entry.crc = serde::crc32(bytes.data(), bytes.size());
    manifest.entries.push_back(entry);
    ASSERT_TRUE(snap::writeManifest(dir, manifest));

    const snap::Manifest loaded =
        snap::loadManifest(dir, manifest.fleetFingerprint);
    ASSERT_EQ(loaded.entries.size(), 1u);
    const snap::ManifestEntry *found = loaded.find(3);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->file, entry.file);
    EXPECT_EQ(found->bytes, entry.bytes);
    EXPECT_EQ(found->crc, entry.crc);
    EXPECT_EQ(loaded.find(0), nullptr);
    EXPECT_NO_THROW(snap::validateAgainstManifest(*found, bytes));

    // Wrong fleet fingerprint: refused up front.
    EXPECT_THROW(snap::loadManifest(dir, 0x1), serde::Error);

    // Disagreeing bytes: detected.
    std::vector<std::uint8_t> other = bytes;
    other[0] ^= 0xff;
    EXPECT_THROW(snap::validateAgainstManifest(*found, other),
                 serde::Error);
    other = bytes;
    other.push_back(0);
    EXPECT_THROW(snap::validateAgainstManifest(*found, other),
                 serde::Error);
}

TEST(SnapshotContainerTest, MalformedManifestThrows)
{
    const std::string dir = scratchDir("badmanifest");
    auto writeText = [&dir](const std::string &text) {
        std::ofstream out(dir + "/" + snap::manifestFileName());
        out << text;
    };
    EXPECT_THROW(snap::loadManifest(dir, 0), serde::Error); // absent
    writeText("not a manifest\n");
    EXPECT_THROW(snap::loadManifest(dir, 0), serde::Error);
    writeText("ctgsnap-manifest 99\nfleet 0\nend\n");
    EXPECT_THROW(snap::loadManifest(dir, 0), serde::Error);
    writeText("ctgsnap-manifest 1\nfleet 0\n"); // no end line
    EXPECT_THROW(snap::loadManifest(dir, 0), serde::Error);
    writeText("ctgsnap-manifest 1\nfleet 0\n"
              "entry 1 a.ctgsnap 10 0000000a\n"
              "entry 1 b.ctgsnap 10 0000000a\nend\n");
    EXPECT_THROW(snap::loadManifest(dir, 0), serde::Error);
}

// ---------------------------------------------------------------
// Server round trip
// ---------------------------------------------------------------

Server::Config
smallServer(bool contiguitas, bool prefragment)
{
    Server::Config config;
    config.memBytes = 256_MiB;
    config.policy.name = contiguitas ? "contiguitas" : "vanilla";
    config.kind = WorkloadKind::Web;
    config.intensity = 1.1;
    config.prefragment = prefragment;
    config.uptimeSec = 5.0;
    config.extraUptimeSec = 3.0;
    config.stepSec = 1.0;
    config.seed = 0x5eedf00d;
    return config;
}

/** Reset the process injector around every case (several of these
 * tests arm sites on it). */
class SnapshotRoundTrip : public ::testing::Test
{
  protected:
    SnapshotRoundTrip() { faultInjector().reset(); }
    ~SnapshotRoundTrip() override { faultInjector().reset(); }
};

/** churn → checkpoint → restore → audit → bit-identical
 * continuation, against a straight-through run of the same config
 * under the same forked injector stream. */
void
expectServerRoundTrip(const Server::Config &config, bool withFaults)
{
    FaultInjector base(0xabcde);
    if (withFaults) {
        for (unsigned i = 0; i < numFaultSites; ++i)
            base.arm(static_cast<FaultSite>(i),
                     FaultSpec::chance(0.02));
    }

    std::vector<std::uint64_t> straightBits;
    {
        FaultInjector fi = base.forkForTask(0);
        const FaultInjectorScope scope(fi);
        Server server(config);
        straightBits = scanBits(server.run());
    }

    std::vector<std::uint8_t> image;
    std::vector<std::uint64_t> checkpointBits;
    {
        FaultInjector fi = base.forkForTask(0);
        const FaultInjectorScope scope(fi);
        Server server(config);
        server.runToCheckpoint();
        image = encodeSnapshot(server, fi);
        checkpointBits = scanBits(server.resume());
    }
    EXPECT_EQ(checkpointBits, straightBits);

    {
        FaultInjector fi = base.forkForTask(0);
        const FaultInjectorScope scope(fi);
        const std::unique_ptr<Server> server =
            decodeSnapshot(config, image, &fi);
        // The restored machine passed decodeSnapshot's audit gate;
        // cross-check once more from the outside.
        const AuditReport report =
            server->kernel().makeAuditor()->audit();
        EXPECT_TRUE(report.ok()) << report.summary();
        EXPECT_EQ(scanBits(server->resume()), straightBits);
    }
}

TEST_F(SnapshotRoundTrip, VanillaServerResumesBitIdentically)
{
    expectServerRoundTrip(smallServer(false, false), false);
}

TEST_F(SnapshotRoundTrip, ContiguitasServerResumesBitIdentically)
{
    expectServerRoundTrip(smallServer(true, false), false);
}

TEST_F(SnapshotRoundTrip, PrefragmentedServerResumesBitIdentically)
{
    expectServerRoundTrip(smallServer(false, true), false);
}

TEST_F(SnapshotRoundTrip,
       ContiguitasPrefragmentedResumesBitIdentically)
{
    expectServerRoundTrip(smallServer(true, true), false);
}

TEST_F(SnapshotRoundTrip, EveryFaultSiteArmedResumesBitIdentically)
{
    expectServerRoundTrip(smallServer(true, true), true);
}

TEST_F(SnapshotRoundTrip, FingerprintMismatchIsRefused)
{
    const Server::Config config = smallServer(false, false);
    FaultInjector fi(1);
    const FaultInjectorScope scope(fi);
    Server server(config);
    server.runToCheckpoint();
    const std::vector<std::uint8_t> image =
        encodeSnapshot(server, fi);

    Server::Config other = config;
    other.seed ^= 1;
    EXPECT_THROW(decodeSnapshot(other, image, nullptr),
                 serde::Error);
    other = config;
    other.intensity += 0.1;
    EXPECT_THROW(decodeSnapshot(other, image, nullptr),
                 serde::Error);
    // The matching config still restores.
    EXPECT_NO_THROW(decodeSnapshot(config, image, nullptr));
}

TEST_F(SnapshotRoundTrip, CorruptedImageIsRefusedNotCrashed)
{
    const Server::Config config = smallServer(true, false);
    FaultInjector fi(1);
    const FaultInjectorScope scope(fi);
    Server server(config);
    server.runToCheckpoint();
    const std::vector<std::uint8_t> image =
        encodeSnapshot(server, fi);

    // Truncation at several depths.
    for (const std::size_t keep :
         {std::size_t{0}, std::size_t{4}, std::size_t{17},
          image.size() / 2, image.size() - 1}) {
        std::vector<std::uint8_t> torn(image.begin(),
                                       image.begin() + keep);
        EXPECT_THROW(decodeSnapshot(config, torn, nullptr),
                     serde::Error)
            << "kept " << keep;
    }

    // Single flipped bits sprinkled across the image: every one
    // must be a detected error (CRC, framing or validation), never
    // a crash or a silently wrong machine.
    const std::size_t stride =
        std::max<std::size_t>(1, image.size() / 257);
    for (std::size_t pos = 0; pos < image.size(); pos += stride) {
        std::vector<std::uint8_t> flipped = image;
        flipped[pos] ^= 0x04;
        try {
            const std::unique_ptr<Server> restored =
                decodeSnapshot(config, flipped, nullptr);
            // Flips in ignored bits (e.g. section reserved words)
            // may legitimately decode; the restored state must then
            // still be the checkpointed one — re-encode and compare.
            EXPECT_EQ(encodeSnapshot(*restored, fi), image)
                << "undetected corruption at byte " << pos;
        } catch (const serde::Error &) {
            // Detected: the contract.
        }
    }
}

// ---------------------------------------------------------------
// Fleet round trip + chaos
// ---------------------------------------------------------------

Fleet::Config
smallFleet(const std::string &checkpointDir,
           const std::string &restoreDir)
{
    Fleet::Config config;
    config.servers = 6;
    config.memBytes = 256_MiB;
    config.policy.name = "contiguitas";
    config.minUptimeSec = 3.0;
    config.maxUptimeSec = 6.0;
    config.prefragmentFrac = 0.3;
    config.extraUptimeSec = 2.0;
    config.seed = 0xdef1ee7;
    config.threads = 1;
    config.checkpointDir = checkpointDir;
    config.restoreDir = restoreDir;
    return config;
}

struct FleetRun
{
    std::vector<std::uint64_t> scans;
    std::vector<std::uint64_t> faultCounts;
};

FleetRun
runFleet(const Fleet::Config &config, const std::string &faultSpec)
{
    faultInjector().reset(0xd15ea5e);
    if (!faultSpec.empty())
        faultInjector().configure(faultSpec);
    Fleet fleet(config);
    FleetRun run;
    run.scans = scansBits(fleet.run());
    for (unsigned i = 0; i < numFaultSites; ++i) {
        const FaultInjector::SiteStats &stats =
            faultInjector().siteStats(static_cast<FaultSite>(i));
        run.faultCounts.push_back(stats.evaluations);
        run.faultCounts.push_back(stats.fires);
    }
    faultInjector().reset();
    return run;
}

class SnapshotFleetTest : public ::testing::Test
{
  protected:
    SnapshotFleetTest() { faultInjector().reset(); }
    ~SnapshotFleetTest() override { faultInjector().reset(); }
};

TEST_F(SnapshotFleetTest, CheckpointAndRestoreMatchStraightThrough)
{
    const std::string dir = scratchDir("fleet_roundtrip");
    const FleetRun straight = runFleet(smallFleet("", ""), "");
    const FleetRun checkpoint = runFleet(smallFleet(dir, ""), "");
    EXPECT_EQ(checkpoint.scans, straight.scans);

    // The checkpoint directory now holds a manifest + one snapshot
    // per server.
    EXPECT_TRUE(std::filesystem::exists(
        dir + "/" + snap::manifestFileName()));
    for (unsigned i = 0; i < 6; ++i)
        EXPECT_TRUE(std::filesystem::exists(
            dir + "/" + snap::snapshotFileName(i)));

    // A clean warm start is fully bit-identical — scans AND fault
    // counters (the restored injector carries the checkpoint-side
    // probe counts).
    const FleetRun restored = runFleet(smallFleet("", dir), "");
    EXPECT_EQ(restored.scans, straight.scans);
    EXPECT_EQ(restored.faultCounts, straight.faultCounts);
}

TEST_F(SnapshotFleetTest, RestoreIsBitIdenticalAtEveryThreadCount)
{
    const std::string dir = scratchDir("fleet_threads");
    const FleetRun straight = runFleet(smallFleet("", ""), "");
    runFleet(smallFleet(dir, ""), "");

    std::vector<FleetRun> runs;
    for (const unsigned threads : {1u, 4u, 8u}) {
        Fleet::Config config = smallFleet("", dir);
        config.threads = threads;
        runs.push_back(runFleet(config, ""));
        EXPECT_EQ(runs.back().scans, straight.scans)
            << "threads=" << threads;
    }
    for (std::size_t i = 1; i < runs.size(); ++i) {
        EXPECT_EQ(runs[i].scans, runs[0].scans);
        EXPECT_EQ(runs[i].faultCounts, runs[0].faultCounts);
    }
}

TEST_F(SnapshotFleetTest,
       EveryFaultSiteArmedStaysBitIdenticalAcrossThreadCounts)
{
    // Arm all 13 sites — simulation faults and snapshot-I/O faults
    // — during checkpoint, restore and straight-through runs. Some
    // snapshots are corrupted at write time, some restores fail and
    // cold-start; the scans must not care, at any thread count.
    // p0.02 matches the parallel-fleet chaos suite (higher rates can
    // fire a boot-time allocation fault, which is fatal by design).
    std::string spec;
    for (unsigned i = 0; i < numFaultSites; ++i) {
        if (!spec.empty())
            spec += ",";
        spec += std::string(FaultInjector::siteName(
                    static_cast<FaultSite>(i))) +
                ":p0.02";
    }

    const std::string dir = scratchDir("fleet_chaos_all");
    const FleetRun straight = runFleet(smallFleet("", ""), spec);
    const FleetRun checkpoint = runFleet(smallFleet(dir, ""), spec);
    EXPECT_EQ(checkpoint.scans, straight.scans);

    std::vector<FleetRun> runs;
    for (const unsigned threads : {1u, 4u, 8u}) {
        Fleet::Config config = smallFleet("", dir);
        config.threads = threads;
        runs.push_back(runFleet(config, spec));
        EXPECT_EQ(runs.back().scans, straight.scans)
            << "threads=" << threads;
    }
    for (std::size_t i = 1; i < runs.size(); ++i)
        EXPECT_EQ(runs[i].faultCounts, runs[0].faultCounts);
}

/** One corruption kind: checkpoint under `writeSpec`, restore under
 * `restoreSpec`; every affected server must detect the damage and
 * cold-start into exactly the straight-through results. */
void
expectDetectedAndColdStarted(const std::string &name,
                             const std::string &writeSpec,
                             const std::string &restoreSpec,
                             FaultSite site)
{
    const std::string dir = scratchDir("fleet_" + name);
    const FleetRun straight = runFleet(smallFleet("", ""), "");
    const FleetRun checkpoint =
        runFleet(smallFleet(dir, ""), writeSpec);
    EXPECT_EQ(checkpoint.scans, straight.scans) << name;

    // Write-side sites must actually have fired during checkpoint.
    if (!writeSpec.empty()) {
        const unsigned i = static_cast<unsigned>(site);
        EXPECT_GT(checkpoint.faultCounts[2 * i + 1], 0u) << name;
    }

    const FleetRun restored =
        runFleet(smallFleet("", dir), restoreSpec);
    EXPECT_EQ(restored.scans, straight.scans) << name;
    if (!restoreSpec.empty()) {
        const unsigned i = static_cast<unsigned>(site);
        EXPECT_GT(restored.faultCounts[2 * i + 1], 0u) << name;
    }
}

TEST_F(SnapshotFleetTest, TornWriteIsDetectedAndColdStarts)
{
    expectDetectedAndColdStarted("torn", "snap.torn_write:p1", "",
                                 FaultSite::SnapTornWrite);
}

TEST_F(SnapshotFleetTest, BitFlipIsDetectedAndColdStarts)
{
    expectDetectedAndColdStarted("flip", "snap.bit_flip:p1", "",
                                 FaultSite::SnapBitFlip);
}

TEST_F(SnapshotFleetTest, VersionSkewIsDetectedAndColdStarts)
{
    expectDetectedAndColdStarted("skew", "snap.version_skew:p1", "",
                                 FaultSite::SnapVersionSkew);
}

TEST_F(SnapshotFleetTest, ManifestSkewIsDetectedAndColdStarts)
{
    expectDetectedAndColdStarted("manifest",
                                 "snap.manifest_skew:p1", "",
                                 FaultSite::SnapManifestSkew);
}

TEST_F(SnapshotFleetTest, ReadFailureIsDetectedAndColdStarts)
{
    expectDetectedAndColdStarted("readfail", "",
                                 "snap.read_fail:p1",
                                 FaultSite::SnapReadFail);
}

TEST_F(SnapshotFleetTest, MissingRestoreDirectoryColdStarts)
{
    const FleetRun straight = runFleet(smallFleet("", ""), "");
    const FleetRun restored = runFleet(
        smallFleet("", ::testing::TempDir() + "ctgsnap_absent"),
        "");
    EXPECT_EQ(restored.scans, straight.scans);
}

TEST_F(SnapshotFleetTest, HandEditedSnapshotFileColdStarts)
{
    const std::string dir = scratchDir("fleet_handedit");
    const FleetRun straight = runFleet(smallFleet("", ""), "");
    runFleet(smallFleet(dir, ""), "");

    // Vandalize one snapshot in the middle (manifest untouched).
    const std::string victim =
        dir + "/" + snap::snapshotFileName(2);
    std::fstream file(victim,
                      std::ios::in | std::ios::out |
                          std::ios::binary);
    ASSERT_TRUE(file.is_open());
    file.seekp(200, std::ios::beg);
    const char garbage = 0x5a;
    file.write(&garbage, 1);
    file.close();

    const FleetRun restored = runFleet(smallFleet("", dir), "");
    EXPECT_EQ(restored.scans, straight.scans);
}

// ---------------------------------------------------------------
// Registry-selected restore: the image names its policy
// ---------------------------------------------------------------

TEST_F(SnapshotFleetTest,
       EveryRegistryPolicyRoundTripsAtEveryThreadCount)
{
    // The Server section leads with the policy's registry name;
    // restore must select the factory from that name, for every
    // registered policy, bit-identically at 1/4/8 threads.
    for (const PolicyRegistry::Entry &entry :
         PolicyRegistry::instance().entries()) {
        const std::string dir =
            scratchDir("fleet_policy_" + entry.name);
        Fleet::Config base = smallFleet("", "");
        base.servers = 3;
        base.memBytes = 128_MiB;
        base.policy = {};
        ASSERT_TRUE(parsePolicySpec(entry.name, &base.policy));

        Fleet::Config checkpoint = base;
        checkpoint.checkpointDir = dir;
        const FleetRun straight = runFleet(base, "");
        EXPECT_EQ(runFleet(checkpoint, "").scans, straight.scans)
            << entry.name;

        for (const unsigned threads : {1u, 4u, 8u}) {
            Fleet::Config restore = base;
            restore.restoreDir = dir;
            restore.threads = threads;
            EXPECT_EQ(runFleet(restore, "").scans, straight.scans)
                << entry.name << " threads=" << threads;
        }
    }
}

TEST_F(SnapshotRoundTrip, UnknownPolicyNameImageIsRefused)
{
    // A snapshot taken under a policy this build no longer knows
    // (fork drift, renamed entry) must be refused as serde::Error —
    // a detected failure the fleet degrades to a cold start — never
    // a crash or a silently wrong machine.
    PolicyRegistry &reg = PolicyRegistry::instance();
    PolicyRegistry::Entry base;
    ASSERT_TRUE(reg.find("contiguitas", &base));
    PolicyRegistry::Entry ephemeral = base;
    ephemeral.name = "test-ephemeral";
    ephemeral.description = "registered only for this test";
    reg.add(ephemeral);

    Server::Config config = smallServer(false, false);
    config.policy.name = "test-ephemeral";
    FaultInjector fi(1);
    const FaultInjectorScope scope(fi);
    Server server(config);
    server.runToCheckpoint();
    const std::vector<std::uint8_t> image =
        encodeSnapshot(server, fi);

    reg.remove("test-ephemeral");
    try {
        decodeSnapshot(config, image, nullptr);
        FAIL() << "image with unregistered policy decoded";
    } catch (const serde::Error &err) {
        EXPECT_NE(std::string(err.what()).find("test-ephemeral"),
                  std::string::npos)
            << err.what();
    }

    // Re-registering the name makes the same image loadable again.
    reg.add(ephemeral);
    EXPECT_NO_THROW(decodeSnapshot(config, image, nullptr));
    reg.remove("test-ephemeral");
}

} // namespace
} // namespace ctg
