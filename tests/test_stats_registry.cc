/**
 * @file
 * Observability-layer tests: StatRegistry registration and naming,
 * group prefixes, exporters (JSON lines / CSV), the StatSampler in
 * both manual and event-queue-driven modes, the trace facility, and
 * the end-to-end fleet time series (a sampled server run must show a
 * fragmentation trajectory).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "base/stat_registry.hh"
#include "base/trace.hh"
#include "fleet/fleet.hh"
#include "fleet/server.hh"
#include "sim/eventq.hh"
#include "sim/stat_sampler.hh"

namespace ctg
{
namespace
{

TEST(StatRegistry, RegistersAndFindsByName)
{
    StatRegistry registry;
    Counter &c = registry.addCounter("srv.mem.allocs", "allocations");
    ++c;
    c += 4;

    const Stat *found = registry.find("srv.mem.allocs");
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->kind(), Stat::Kind::Counter);
    EXPECT_DOUBLE_EQ(found->value(), 5.0);
    EXPECT_EQ(found->desc(), "allocations");
    EXPECT_EQ(registry.find("srv.mem.nothing"), nullptr);
    EXPECT_EQ(registry.size(), 1u);
}

TEST(StatRegistry, DuplicateNamePanics)
{
    StatRegistry registry;
    registry.addCounter("dup");
    EXPECT_THROW(registry.addCounter("dup"), PanicError);
    EXPECT_THROW(registry.addGauge("dup", [] { return 0.0; }),
                 PanicError);
}

TEST(StatRegistry, MalformedNamePanics)
{
    StatRegistry registry;
    EXPECT_THROW(registry.addCounter(""), PanicError);
    EXPECT_THROW(registry.addCounter("has space"), PanicError);
    EXPECT_THROW(registry.addCounter("has,comma"), PanicError);
    registry.addCounter("ok-name_1.x"); // all legal characters
}

TEST(StatRegistry, GroupPrefixesNest)
{
    StatRegistry registry;
    const StatGroup root(registry, "server3");
    const StatGroup mem = root.group("mem").group("buddy");
    mem.counter("split_events");
    EXPECT_NE(registry.find("server3.mem.buddy.split_events"),
              nullptr);

    // An empty prefix registers bare leaves.
    const StatGroup bare(registry);
    bare.counter("top_level");
    EXPECT_NE(registry.find("top_level"), nullptr);
}

TEST(StatRegistry, GaugeReadsCallbackAndSettableHoldsValue)
{
    StatRegistry registry;
    double backing = 1.0;
    Gauge &cb = registry.addGauge("live",
                                  [&backing] { return backing; });
    backing = 7.5;
    EXPECT_DOUBLE_EQ(cb.value(), 7.5);

    Gauge &set = registry.addSettableGauge("held");
    set.set(3.25);
    EXPECT_DOUBLE_EQ(set.value(), 3.25);
}

TEST(StatRegistry, DistributionSummarizes)
{
    StatRegistry registry;
    Distribution &d = registry.addDistribution("lat");
    d.sample(1.0);
    d.sample(2.0);
    d.sample(3.0);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.mean(), 2.0);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 3.0);
}

TEST(StatRegistry, JsonLinesRoundTripsValues)
{
    StatRegistry registry;
    Counter &c = registry.addCounter("a.count");
    c += 12;
    registry.addGauge("a.share", [] { return 0.1; });
    Distribution &d = registry.addDistribution("a.lat", "latency");
    d.sample(2.0);
    d.sample(4.0);

    const std::string json = registry.jsonLines();
    // One line per stat, registration order.
    std::vector<std::string> lines;
    std::istringstream in(json);
    for (std::string line; std::getline(in, line);)
        lines.push_back(line);
    ASSERT_EQ(lines.size(), 3u);
    EXPECT_EQ(lines[0],
              "{\"name\":\"a.count\",\"kind\":\"counter\","
              "\"value\":12}");
    EXPECT_NE(lines[1].find("\"value\":0.1"), std::string::npos);
    EXPECT_NE(lines[2].find("\"count\":2"), std::string::npos);
    EXPECT_NE(lines[2].find("\"mean\":3"), std::string::npos);
    EXPECT_NE(lines[2].find("\"min\":2"), std::string::npos);
    EXPECT_NE(lines[2].find("\"max\":4"), std::string::npos);
    EXPECT_NE(lines[2].find("\"desc\":\"latency\""),
              std::string::npos);
}

TEST(StatRegistry, CsvHasFixedHeaderAndOneRowPerStat)
{
    StatRegistry registry;
    Counter &c = registry.addCounter("x");
    ++c;
    registry.addDistribution("y").sample(5.0);

    const std::string csv = registry.csv();
    std::istringstream in(csv);
    std::string header;
    std::getline(in, header);
    EXPECT_EQ(header, "name,kind,value,count,mean,min,max,stddev");
    std::string row1, row2;
    ASSERT_TRUE(std::getline(in, row1));
    ASSERT_TRUE(std::getline(in, row2));
    EXPECT_EQ(row1.substr(0, 10), "x,counter,");
    EXPECT_NE(row2.find("y,distribution,"), std::string::npos);
}

TEST(StatRegistry, ResetAllClearsEverything)
{
    StatRegistry registry;
    Counter &c = registry.addCounter("c");
    c += 9;
    Distribution &d = registry.addDistribution("d");
    d.sample(1.0);
    registry.resetAll();
    EXPECT_DOUBLE_EQ(c.value(), 0.0);
    EXPECT_EQ(d.count(), 0u);
}

TEST(StatSampler, ManualSamplingBuildsSeries)
{
    StatRegistry registry;
    Counter &c = registry.addCounter("events");
    StatSampler sampler(registry);

    for (Tick t = 0; t < 5; ++t) {
        c += 2;
        sampler.sample(t * 10);
    }
    EXPECT_EQ(sampler.sampleCount(), 5u);
    const std::vector<double> *series = sampler.series("events");
    ASSERT_NE(series, nullptr);
    EXPECT_EQ(series->size(), 5u);
    EXPECT_DOUBLE_EQ(series->front(), 2.0);
    EXPECT_DOUBLE_EQ(series->back(), 10.0);
    EXPECT_EQ(sampler.ticks().back(), Tick{40});
}

TEST(StatSampler, LateRegistrationBackfillsZeros)
{
    StatRegistry registry;
    registry.addCounter("early");
    StatSampler sampler(registry);
    sampler.sample(0);
    sampler.sample(1);
    Counter &late = registry.addCounter("late");
    late += 3;
    sampler.sample(2);

    const std::vector<double> *series = sampler.series("late");
    ASSERT_NE(series, nullptr);
    ASSERT_EQ(series->size(), 3u);
    EXPECT_DOUBLE_EQ((*series)[0], 0.0);
    EXPECT_DOUBLE_EQ((*series)[1], 0.0);
    EXPECT_DOUBLE_EQ((*series)[2], 3.0);
}

TEST(StatSampler, PeriodicEventSamplingUntilDetach)
{
    StatRegistry registry;
    Counter &c = registry.addCounter("ticks_seen");
    EventQueue eventq;
    StatSampler sampler(registry);
    sampler.attach(eventq, 100);

    eventq.schedule(250, [&c] { ++c; });
    // While armed the sampler keeps rescheduling itself, so the run
    // must be tick-limited.
    eventq.run(1000);
    EXPECT_GE(sampler.sampleCount(), 9u);
    const std::vector<double> *series = sampler.series("ticks_seen");
    ASSERT_NE(series, nullptr);
    EXPECT_DOUBLE_EQ(series->front(), 0.0);
    EXPECT_DOUBLE_EQ(series->back(), 1.0);

    sampler.detach();
    const std::size_t frozen = sampler.sampleCount();
    eventq.run(2000);
    EXPECT_EQ(sampler.sampleCount(), frozen);
}

TEST(StatSampler, CsvAndJsonExportMatchSamples)
{
    StatRegistry registry;
    Counter &c = registry.addCounter("n");
    StatSampler sampler(registry);
    ++c;
    sampler.sample(7);

    const std::string csv = sampler.csv();
    EXPECT_EQ(csv, "tick,n\n7,1\n");
    const std::string json = sampler.jsonLines();
    EXPECT_EQ(json, "{\"tick\":7,\"values\":{\"n\":1}}\n");
}

TEST(Trace, FlagsToggleIndividuallyAndFromString)
{
    trace::disableAll();
    EXPECT_FALSE(trace::enabled(TraceFlag::Buddy));
    trace::enable(TraceFlag::Buddy);
    EXPECT_TRUE(trace::enabled(TraceFlag::Buddy));
    EXPECT_FALSE(trace::enabled(TraceFlag::Region));
    trace::disable(TraceFlag::Buddy);
    EXPECT_FALSE(trace::enabled(TraceFlag::Buddy));

    trace::setFromString("Buddy, Region");
    EXPECT_TRUE(trace::enabled(TraceFlag::Buddy));
    EXPECT_TRUE(trace::enabled(TraceFlag::Region));
    EXPECT_FALSE(trace::enabled(TraceFlag::Fleet));
    trace::setFromString("All");
    EXPECT_TRUE(trace::enabled(TraceFlag::Fleet));
    trace::disableAll();
}

TEST(Trace, RecordsGoToFileSinkWithTickStamp)
{
    const std::string path =
        testing::TempDir() + "ctg_trace_test.log";
    trace::disableAll();
    ASSERT_TRUE(trace::openFileSink(path));
    trace::enable(TraceFlag::Kernel);

    EventQueue eventq;
    trace::setTickSource([&eventq] { return eventq.now(); });
    eventq.schedule(42, [] {
        CTG_DPRINTF(Kernel, "probe %d", 7);
    });
    eventq.run();

    // Disabled flags must not emit (and must not evaluate args).
    bool evaluated = false;
    auto touch = [&evaluated] {
        evaluated = true;
        return 0;
    };
    CTG_DPRINTF(Tlb, "never %d", touch());
    EXPECT_FALSE(evaluated);

    trace::clearTickSource();
    trace::setSink(nullptr); // back to stderr; closes the file
    trace::disableAll();

    std::FILE *f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char buf[256] = {};
    ASSERT_NE(std::fgets(buf, sizeof(buf), f), nullptr);
    std::fclose(f);
    std::remove(path.c_str());
    const std::string line(buf);
    EXPECT_NE(line.find("42"), std::string::npos);
    EXPECT_NE(line.find("Kernel"), std::string::npos);
    EXPECT_NE(line.find("probe 7"), std::string::npos);
}

TEST(Trace, FlagNames)
{
    EXPECT_STREQ(trace::flagName(TraceFlag::Buddy), "Buddy");
    EXPECT_STREQ(trace::flagName(TraceFlag::ChwEngine), "ChwEngine");
}

// The acceptance scenario: a sampled server run must produce a
// multi-stat time series long enough to show the fragmentation
// trajectory over simulated time.
TEST(FleetTelemetry, ServerRunEmitsFragmentationTimeSeries)
{
    Server::Config config;
    config.memBytes = std::uint64_t{256} << 20;
    config.uptimeSec = 12.0;
    config.stepSec = 1.0;
    config.seed = 0x7e1e;
    Server server(config);

    StatRegistry registry;
    StatSampler sampler(registry);
    server.attachTelemetry(registry, &sampler, "server0");
    server.run();

    // >= 10 snapshots (one per step plus the boot sample) of a
    // multi-stat registry.
    EXPECT_GE(sampler.sampleCount(), 10u);
    EXPECT_GE(sampler.statNames().size(), 2u);

    const std::vector<double> *frag =
        sampler.series("server0.frag.free_contiguity_2m");
    ASSERT_NE(frag, nullptr);
    const std::vector<double> *unmov =
        sampler.series("server0.frag.unmovable_blocks_2m");
    ASSERT_NE(unmov, nullptr);
    const std::vector<double> *clock =
        sampler.series("server0.kernel.now_seconds");
    ASSERT_NE(clock, nullptr);

    // The trajectory moves: churn must degrade contiguity from the
    // pristine boot layout, and time must advance monotonically.
    EXPECT_GT(frag->front(), frag->back());
    EXPECT_GT(unmov->back(), 0.0);
    EXPECT_LT(clock->front(), clock->back());
    for (std::size_t i = 1; i < sampler.ticks().size(); ++i)
        EXPECT_LE(sampler.ticks()[i - 1], sampler.ticks()[i]);

    // The kernel's ad-hoc counters ride along in the same series.
    EXPECT_NE(sampler.series("server0.kernel.pins"), nullptr);
    EXPECT_NE(sampler.series("server0.workload.resident_pages"),
              nullptr);

    // And the scalar exporters still see every stat.
    const std::string json = registry.jsonLines();
    EXPECT_NE(json.find("server0.mem.buddy.alloc_calls"),
              std::string::npos);
    EXPECT_NE(json.find("server0.frag.free_contiguity_2m"),
              std::string::npos);
}

TEST(FleetTelemetry, FleetAggregatesIntoDistributions)
{
    Fleet::Config config;
    config.servers = 3;
    config.memBytes = std::uint64_t{256} << 20;
    config.minUptimeSec = 2.0;
    config.maxUptimeSec = 4.0;
    config.seed = 0xbeef;

    Fleet fleet(config);
    StatRegistry registry;
    StatSampler sampler(registry);
    fleet.attachTelemetry(registry, &sampler);
    const std::vector<ServerScan> scans = fleet.run();
    ASSERT_EQ(scans.size(), 3u);

    const Stat *servers = registry.find("fleet.servers_run");
    ASSERT_NE(servers, nullptr);
    EXPECT_DOUBLE_EQ(servers->value(), 3.0);
    const Stat *contig =
        registry.find("fleet.free_contiguity_2m");
    ASSERT_NE(contig, nullptr);
    EXPECT_EQ(sampler.sampleCount(), 3u);
}

TEST(FleetTelemetry, ContiguitasPolicyTreeIsRegistered)
{
    Server::Config config;
    config.memBytes = std::uint64_t{256} << 20;
    config.policy.name = "contiguitas";
    config.uptimeSec = 4.0;
    config.seed = 0xf00d;
    Server server(config);

    StatRegistry registry;
    server.attachTelemetry(registry, nullptr, "s");
    server.run();

    const std::string json = registry.jsonLines();
    // Region manager, resize controller and both region buddies all
    // surface through the one registry.
    EXPECT_NE(json.find("s.ctg.region.expansions"),
              std::string::npos);
    EXPECT_NE(json.find("s.ctg.controller.evaluations"),
              std::string::npos);
    EXPECT_NE(json.find("s.mem.unmovable.buddy.alloc_calls"),
              std::string::npos);
    EXPECT_NE(json.find("s.mem.movable.buddy.free_pages"),
              std::string::npos);
}

} // namespace
} // namespace ctg
