/**
 * @file
 * Workload layer tests: profiles, slab churn, workload lifecycle
 * (start, churn, restart, gigantic rebacking), khugepaged promotion,
 * the fragmenter, and the access-stream generators.
 */

#include <gtest/gtest.h>

#include "base/units.hh"
#include "contiguitas/policy.hh"
#include "mem/mem_stats.hh"
#include "mem/scanner.hh"
#include "workloads/access_gen.hh"
#include "workloads/fragmenter.hh"
#include "workloads/profile.hh"
#include "workloads/workload.hh"

namespace ctg
{
namespace
{

KernelConfig
smallConfig(std::uint64_t bytes = 512_MiB)
{
    KernelConfig config;
    config.memBytes = bytes;
    config.kernelTextBytes = 4_MiB;
    return config;
}

WorkloadProfile
tinyProfile(WorkloadKind kind, std::uint64_t mem_bytes)
{
    WorkloadProfile profile = makeProfile(kind, mem_bytes);
    // Shrink rates so tests stay fast.
    profile.net.skbRatePerSec /= 4;
    profile.fs.scratchRatePerSec /= 4;
    profile.slab.ratePerSec /= 4;
    return profile;
}

TEST(Profiles, RatesScaleWithMemory)
{
    const WorkloadProfile small =
        makeProfile(WorkloadKind::Web, 2_GiB);
    const WorkloadProfile big =
        makeProfile(WorkloadKind::Web, 8_GiB);
    EXPECT_NEAR(big.net.skbRatePerSec / small.net.skbRatePerSec, 4.0,
                0.01);
    EXPECT_NEAR(big.slab.ratePerSec / small.slab.ratePerSec, 4.0,
                0.01);
}

TEST(Profiles, EveryKindIsNamedAndValid)
{
    for (const WorkloadKind kind :
         {WorkloadKind::Web, WorkloadKind::CacheA,
          WorkloadKind::CacheB, WorkloadKind::CI,
          WorkloadKind::Nginx, WorkloadKind::Memcached}) {
        const WorkloadProfile profile = makeProfile(kind, 2_GiB);
        EXPECT_FALSE(profile.name.empty());
        EXPECT_GT(profile.residentFrac, 0.0);
        EXPECT_LT(profile.residentFrac, 0.95);
        EXPECT_GT(profile.net.skbRatePerSec, 0.0);
    }
}

TEST(SlabChurnTest, ReachesSteadyState)
{
    Kernel kernel(smallConfig());
    SlabAllocator slab(kernel);
    SlabChurn::Config config;
    config.ratePerSec = 3000;
    config.meanLifeSec = 0.05;
    config.longLivedFrac = 0.0;
    SlabChurn churn(slab, config, 3);
    churn.advanceTo(10.0);
    // Little's law: ~150 live objects.
    EXPECT_GT(churn.liveObjects(), 75u);
    EXPECT_LT(churn.liveObjects(), 300u);
    EXPECT_GT(slab.backingPages(), 0u);
}

TEST(WorkloadTest, StartBacksResidentSet)
{
    Kernel kernel(smallConfig());
    Workload workload(kernel,
                      tinyProfile(WorkloadKind::CacheB, 512_MiB), 5);
    workload.start();
    const double resident_frac =
        static_cast<double>(workload.residentPages()) /
        static_cast<double>(kernel.mem().numFrames());
    EXPECT_GT(resident_frac, 0.5);
    // Fresh memory: THP backs essentially everything huge.
    EXPECT_GT(workload.hugeBackedFraction(), 0.9);
}

TEST(WorkloadTest, ChurnKeepsResidencyRoughlyConstant)
{
    Kernel kernel(smallConfig());
    Workload workload(kernel,
                      tinyProfile(WorkloadKind::Web, 512_MiB), 5);
    workload.start();
    const std::uint64_t before = workload.residentPages();
    workload.runFor(8.0);
    const std::uint64_t after = workload.residentPages();
    EXPECT_GT(after * 10, before * 7); // within ~30%
    EXPECT_GT(workload.stats().heapPagesChurned, 0u);
}

TEST(WorkloadTest, RestartRefaultsEverything)
{
    Kernel kernel(smallConfig());
    Workload workload(kernel,
                      tinyProfile(WorkloadKind::CacheB, 512_MiB), 5);
    workload.start();
    workload.runFor(5.0);
    workload.restart();
    EXPECT_GT(workload.residentPages(), 0u);
}

TEST(WorkloadTest, CiTurnoverRecyclesJobs)
{
    Kernel kernel(smallConfig());
    WorkloadProfile profile = tinyProfile(WorkloadKind::CI, 512_MiB);
    profile.jobTurnoverPerSec = 0.5;
    Workload workload(kernel, profile, 5);
    workload.start();
    workload.runFor(10.0);
    EXPECT_GT(workload.stats().jobsRecycled, 0u);
}

TEST(WorkloadTest, PinsAreCreatedAndConfined)
{
    KernelConfig kc = smallConfig();
    ContiguitasConfig cc;
    cc.region.initialUnmovablePages = (64_MiB) / pageBytes;
    cc.region.minUnmovablePages = (16_MiB) / pageBytes;
    cc.tuning.stepPages = (8_MiB) / pageBytes;
    Kernel kernel(kc, ContiguitasPolicy::factory(cc));
    WorkloadProfile profile =
        tinyProfile(WorkloadKind::CacheB, 512_MiB);
    profile.pinRatePerSec = 50.0;
    Workload workload(kernel, profile, 5);
    workload.start();
    workload.runFor(6.0);
    EXPECT_GT(workload.stats().pinsCreated, 0u);
    auto &policy = static_cast<ContiguitasPolicy &>(kernel.policy());
    policy.regions().checkConfinement();
}

TEST(PromoteTest, CollapsesFullyBackedRanges)
{
    KernelConfig config = smallConfig();
    config.thpEnabled = true;
    Kernel kernel(config);
    AddressSpace space(kernel, 1);
    // Force 4 KB backing by touching page-wise.
    const Addr base = space.mmap(8_MiB);
    for (Addr off = 0; off < 8_MiB; off += pageBytes)
        space.touchRange(base + off, pageBytes);
    ASSERT_EQ(space.chunks2m(), 0u);
    ASSERT_EQ(space.pages4k(), (8_MiB) / pageBytes);

    const std::uint64_t promoted = space.promoteHugeRanges(16);
    EXPECT_EQ(promoted, 4u);
    EXPECT_EQ(space.chunks2m(), 4u);
    EXPECT_EQ(space.pages4k(), 0u);
    // Translations still valid and huge.
    const Translation t = space.translate(base + 12345);
    ASSERT_TRUE(t.valid);
    EXPECT_EQ(t.order, hugeOrder);
}

TEST(PromoteTest, BudgetIsRespected)
{
    Kernel kernel(smallConfig());
    AddressSpace space(kernel, 1);
    const Addr base = space.mmap(8_MiB);
    for (Addr off = 0; off < 8_MiB; off += pageBytes)
        space.touchRange(base + off, pageBytes);
    EXPECT_EQ(space.promoteHugeRanges(2), 2u);
    EXPECT_EQ(space.chunks2m(), 2u);
}

TEST(PromoteTest, PinnedPageBlocksCollapse)
{
    Kernel kernel(smallConfig());
    AddressSpace space(kernel, 1);
    const Addr base = space.mmap(2_MiB);
    for (Addr off = 0; off < 2_MiB; off += pageBytes)
        space.touchRange(base + off, pageBytes);
    const Translation t = space.translate(base + 5 * pageBytes);
    ASSERT_TRUE(t.valid);
    kernel.pinPages(t.pfn);
    EXPECT_EQ(space.promoteHugeRanges(4), 0u);
}

TEST(FragmenterTest, DevastatesContiguity)
{
    Kernel kernel(smallConfig());
    Fragmenter fragmenter(kernel, {}, 7);
    fragmenter.run();
    const PhysMem &mem = kernel.mem();
    const double contaminated = mem.stats().unmovableBlockFraction(
        0, mem.numFrames(), scan::order2M);
    const double pages = mem.stats().unmovablePageRatio(0, mem.numFrames());
    // A couple percent of pages poison nearly every 2MB block.
    EXPECT_LT(pages, 0.05);
    EXPECT_GT(contaminated, 0.8);
}

TEST(FragmenterTest, SprinklesFreedOnDestruction)
{
    Kernel kernel(smallConfig());
    const std::uint64_t free_before =
        kernel.policy().freeUserPages() +
        kernel.policy().freeKernelPages();
    {
        Fragmenter fragmenter(kernel, {}, 7);
        fragmenter.run();
    }
    const std::uint64_t free_after =
        kernel.policy().freeUserPages() +
        kernel.policy().freeKernelPages();
    EXPECT_EQ(free_before, free_after);
}

TEST(FragmenterTest, ContiguitasConfinesTheDamage)
{
    KernelConfig kc = smallConfig();
    ContiguitasConfig cc;
    cc.region.initialUnmovablePages = (64_MiB) / pageBytes;
    cc.region.minUnmovablePages = (16_MiB) / pageBytes;
    Kernel kernel(kc, ContiguitasPolicy::factory(cc));
    Fragmenter fragmenter(kernel, {}, 7);
    fragmenter.run();
    auto &policy = static_cast<ContiguitasPolicy &>(kernel.policy());
    const double pot2m = kernel.mem().stats().potentialContiguityFraction(
        policy.regions().boundary(),
        kernel.mem().numFrames(), scan::order2M);
    EXPECT_GT(pot2m, 0.99);
    policy.regions().checkConfinement();
}

TEST(AccessStreamTest, AddressesStayInRegions)
{
    AccessProfile profile;
    profile.dataBytes = 64_MiB;
    profile.codeBytes = 8_MiB;
    AccessStream stream(profile, 0x100000000, 0x200000000, 3);
    Rng unused(0);
    for (int i = 0; i < 5000; ++i) {
        bool w = false;
        const Addr d = stream.nextData(&w);
        EXPECT_GE(d, 0x100000000u);
        EXPECT_LT(d, 0x100000000u + 64_MiB);
        const Addr c = stream.nextCode();
        EXPECT_GE(c, 0x200000000u);
        EXPECT_LT(c, 0x200000000u + 8_MiB);
    }
}

TEST(AccessStreamTest, WriteFractionRespected)
{
    AccessProfile profile;
    profile.dataBytes = 16_MiB;
    profile.codeBytes = 4_MiB;
    profile.writeFrac = 0.25;
    AccessStream stream(profile, 0, 1_GiB, 3);
    int writes = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        bool w = false;
        stream.nextData(&w);
        writes += w;
    }
    EXPECT_NEAR(static_cast<double>(writes) / n, 0.25, 0.02);
}

TEST(AccessStreamTest, PopularitySkewed)
{
    AccessProfile profile;
    profile.dataBytes = 64_MiB;
    profile.codeBytes = 4_MiB;
    profile.dataZipfTheta = 0.8;
    AccessStream stream(profile, 0, 1_GiB, 3);
    std::map<Addr, int> page_counts;
    for (int i = 0; i < 30000; ++i) {
        bool w = false;
        page_counts[stream.nextData(&w) >> pageShift]++;
    }
    // The hottest page must absorb far more than the uniform share.
    int hottest = 0;
    for (const auto &[page, count] : page_counts)
        hottest = std::max(hottest, count);
    const double uniform_share =
        30000.0 / static_cast<double>(64_MiB / pageBytes);
    EXPECT_GT(hottest, 20 * uniform_share);
}

} // namespace
} // namespace ctg
