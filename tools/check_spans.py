#!/usr/bin/env python3
"""Validate a span trace exported via CTG_TRACE_SPANS.

Checks that the file is well-formed Chrome trace_event JSON and that
the span structure honors the contracts DESIGN.md section 13
promises:

  * every "E" closes the innermost open "B" on its (pid, tid) track,
    and no track ends with an unclosed span;
  * timestamps are strictly increasing per track (the per-stream
    logical clock);
  * every "B" carries a span_id and its parent_span is exactly the
    span_id of the enclosing open span (0 at the root), i.e. the
    causal tree is connected;
  * every flow head ("f") pairs with a flow tail ("s") of the same
    id (a tail without a head is only a warning: the migration may
    legitimately still be in flight when the process exits).

Usage: check_spans.py trace.json [more.json ...]

Exits 0 when every file passes, 1 otherwise.
"""

import json
import sys


def check(path):
    errors = []
    warnings = []

    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    events = doc["traceEvents"] if isinstance(doc, dict) else doc
    if not isinstance(events, list):
        return ["traceEvents is not a list"], warnings, {}

    stacks = {}     # (pid, tid) -> [(name, ts, span_id)]
    last_ts = {}    # (pid, tid) -> ts of the previous event
    flow_tails = {} # flow id -> count of "s"
    flow_heads = {} # flow id -> count of "f"
    stats = {"events": 0, "spans": 0, "instants": 0,
             "flows": 0, "max_depth": 0}

    for n, ev in enumerate(events):
        ph = ev.get("ph")
        if ph == "M":
            continue
        stats["events"] += 1
        track = (ev.get("pid"), ev.get("tid"))
        name = ev.get("name", "?")
        ts = ev.get("ts")
        where = "event %d (%s %r tid %s)" % (n, ph, name, track[1])

        if not isinstance(ts, (int, float)):
            errors.append("%s: missing ts" % where)
            continue
        if track in last_ts and ts <= last_ts[track]:
            errors.append("%s: ts %s not strictly increasing "
                          "(previous %s)" % (where, ts,
                                             last_ts[track]))
        last_ts[track] = ts

        stack = stacks.setdefault(track, [])
        if ph == "B":
            stats["spans"] += 1
            args = ev.get("args", {})
            span_id = args.get("span_id")
            if span_id is None:
                errors.append("%s: B without span_id" % where)
                span_id = 0
            parent = args.get("parent_span", 0)
            expect = stack[-1][2] if stack else 0
            if parent != expect:
                errors.append("%s: parent_span %s but enclosing "
                              "span is %s" % (where, parent, expect))
            stack.append((name, ts, span_id))
            stats["max_depth"] = max(stats["max_depth"], len(stack))
        elif ph == "E":
            if not stack:
                errors.append("%s: E with no open span" % where)
            else:
                open_name, open_ts, _ = stack.pop()
                if open_name != name:
                    errors.append("%s: E closes %r but innermost "
                                  "open span is %r"
                                  % (where, name, open_name))
                if ts < open_ts:
                    errors.append("%s: E before its B" % where)
        elif ph == "i":
            stats["instants"] += 1
        elif ph == "s":
            stats["flows"] += 1
            flow_tails[ev.get("id")] = \
                flow_tails.get(ev.get("id"), 0) + 1
        elif ph == "f":
            flow_heads[ev.get("id")] = \
                flow_heads.get(ev.get("id"), 0) + 1
        else:
            errors.append("%s: unknown phase %r" % (where, ph))

    for track, stack in stacks.items():
        for name, _, _ in stack:
            errors.append("tid %s: span %r never closed"
                          % (track[1], name))
    for fid, n in flow_heads.items():
        if flow_tails.get(fid, 0) == 0:
            errors.append("flow %s: head (f) without tail (s)" % fid)
    for fid, n in flow_tails.items():
        if flow_heads.get(fid, 0) == 0:
            warnings.append("flow %s: tail (s) without head (f) — "
                            "in flight at exit?" % fid)

    stats["tracks"] = len(last_ts)
    return errors, warnings, stats


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        try:
            errors, warnings, stats = check(path)
        except (OSError, ValueError) as exc:
            print("%s: FAIL: %s" % (path, exc))
            failed = True
            continue
        for w in warnings[:10]:
            print("%s: warning: %s" % (path, w))
        if errors:
            failed = True
            for e in errors[:20]:
                print("%s: error: %s" % (path, e))
            print("%s: FAIL (%d errors)" % (path, len(errors)))
        else:
            print("%s: OK — %d events on %d tracks, %d spans "
                  "(max depth %d), %d instants, %d flows"
                  % (path, stats["events"], stats["tracks"],
                     stats["spans"], stats["max_depth"],
                     stats["instants"], stats["flows"]))
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
