#!/usr/bin/env python3
"""Validate a checkpoint directory written by a CTG_CHECKPOINT run.

Checks, for `MANIFEST` and every snapshot image it references:

  * the manifest parses (header, version, fingerprint line, entries,
    required trailing `end` line, no duplicate servers);
  * each referenced file exists, with exactly the byte count and
    CRC-32 the manifest records;
  * each image opens (magic + format version) and its section chain
    is well-formed: framed lengths stay in bounds, every section
    payload matches its trailing CRC-32, and the chain terminates
    with the End section (id 0xE7D) exactly at end-of-file;
  * the section sequence is Meta, Server, Faults, End.

This is the out-of-process cross-check for the snapshot subsystem
(src/sim/snapshot.*): it shares no code with the simulator, so a
serializer bug that also fools the in-process reader still trips it.
Stdlib only. Exit status: 0 = valid, 1 = validation failure,
2 = usage error.

Usage: tools/validate_snapshot.py <checkpoint-dir>
"""

import os
import struct
import sys
import zlib

FILE_MAGIC = 0x53475443  # 'CTGS' little-endian
FORMAT_VERSION = 1
SEC_META = 1
SEC_SERVER = 2
SEC_FAULTS = 3
SEC_END = 0xE7D
EXPECTED_SECTIONS = [SEC_META, SEC_SERVER, SEC_FAULTS, SEC_END]

MANIFEST_NAME = "MANIFEST"
MANIFEST_HEADER = "ctgsnap-manifest"
MANIFEST_VERSION = 1


class ValidationError(Exception):
    pass


def parse_manifest(path):
    """Return (fleet_fingerprint, [(server, file, bytes, crc)])."""
    try:
        with open(path, "r", encoding="ascii") as f:
            lines = f.read().splitlines()
    except OSError as e:
        raise ValidationError(f"cannot read manifest: {e}")

    if not lines:
        raise ValidationError("manifest is empty")
    head = lines[0].split()
    if len(head) != 2 or head[0] != MANIFEST_HEADER:
        raise ValidationError(f"bad manifest header {lines[0]!r}")
    if int(head[1]) != MANIFEST_VERSION:
        raise ValidationError(
            f"unsupported manifest version {head[1]}")
    if len(lines) < 2 or not lines[1].startswith("fleet "):
        raise ValidationError("missing fleet fingerprint line")
    fingerprint = int(lines[1].split()[1], 16)

    entries = []
    seen = set()
    terminated = False
    for line in lines[2:]:
        if terminated:
            raise ValidationError(f"line after 'end': {line!r}")
        if line == "end":
            terminated = True
            continue
        fields = line.split()
        if len(fields) != 5 or fields[0] != "entry":
            raise ValidationError(f"bad manifest line {line!r}")
        server = int(fields[1])
        if server in seen:
            raise ValidationError(f"duplicate server {server}")
        seen.add(server)
        entries.append(
            (server, fields[2], int(fields[3]), int(fields[4], 16)))
    if not terminated:
        raise ValidationError("manifest missing 'end' line "
                              "(truncated write?)")
    return fingerprint, entries


def validate_image(path, want_bytes, want_crc):
    try:
        with open(path, "rb") as f:
            data = f.read()
    except OSError as e:
        raise ValidationError(f"cannot read image: {e}")

    if len(data) != want_bytes:
        raise ValidationError(
            f"size {len(data)} != manifest {want_bytes}")
    crc = zlib.crc32(data) & 0xFFFFFFFF
    if crc != want_crc:
        raise ValidationError(
            f"whole-file crc {crc:08x} != manifest {want_crc:08x}")

    if len(data) < 8:
        raise ValidationError("image shorter than its header")
    magic, version = struct.unpack_from("<II", data, 0)
    if magic != FILE_MAGIC:
        raise ValidationError(f"bad magic {magic:#x}")
    if version != FORMAT_VERSION:
        raise ValidationError(f"unsupported format version {version}")

    pos = 8
    section_ids = []
    while True:
        if len(data) - pos < 16:
            raise ValidationError(
                f"truncated section header at offset {pos}")
        sec_id, _reserved, payload_len = struct.unpack_from(
            "<IIQ", data, pos)
        pos += 16
        if payload_len > len(data) - pos - 4:
            raise ValidationError(
                f"section {sec_id:#x} at offset {pos - 16} claims "
                f"{payload_len} payload bytes beyond end of file")
        payload = data[pos:pos + payload_len]
        pos += payload_len
        (sec_crc,) = struct.unpack_from("<I", data, pos)
        pos += 4
        actual = zlib.crc32(payload) & 0xFFFFFFFF
        if actual != sec_crc:
            raise ValidationError(
                f"section {sec_id:#x} crc {actual:08x} != "
                f"recorded {sec_crc:08x}")
        section_ids.append(sec_id)
        if sec_id == SEC_END:
            break
    if pos != len(data):
        raise ValidationError(
            f"{len(data) - pos} trailing bytes after End section")
    if section_ids != EXPECTED_SECTIONS:
        raise ValidationError(
            f"section sequence {section_ids} != "
            f"{EXPECTED_SECTIONS}")


def main(argv):
    if len(argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    directory = argv[1]
    manifest_path = os.path.join(directory, MANIFEST_NAME)

    try:
        fingerprint, entries = parse_manifest(manifest_path)
    except ValidationError as e:
        print(f"FAIL {manifest_path}: {e}")
        return 1

    print(f"manifest: fleet fingerprint {fingerprint:016x}, "
          f"{len(entries)} snapshot(s)")
    failures = 0
    for server, name, size, crc in entries:
        path = os.path.join(directory, name)
        try:
            validate_image(path, size, crc)
            print(f"  OK   server {server}: {name} ({size} bytes)")
        except ValidationError as e:
            print(f"  FAIL server {server}: {name}: {e}")
            failures += 1

    if failures:
        print(f"{failures} snapshot(s) failed validation")
        return 1
    print("all snapshots valid")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
